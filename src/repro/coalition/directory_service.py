"""A certificate/CRL directory service over the simulated network.

Section 4.3: "It is essential to verify the most recent available
revocation information before granting access to an object."  The push
model (the RA sends revocations to every server) is what
:meth:`CoalitionServer.receive_revocation` implements; real deployments
usually *pull*: servers periodically query a directory for fresh CRLs.

This module provides both halves over :class:`repro.sim.Network`:

* :class:`DirectoryNode` — wraps a :class:`~repro.pki.store
  .CertificateStore` and answers ``crl-query`` messages with every
  revocation newer than the querier's watermark;
* :class:`DirectorySyncClient` — a server-side agent that issues
  queries, applies returned revocations to the server's protocol state,
  and tracks staleness (ticks since the last completed sync).

Tests use it to show the freshness trade-off: a server that hasn't
synced can wrongly grant with a just-revoked certificate; after the
sync the same request is denied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..pki.certificates import RevocationCertificate
from ..pki.store import CertificateStore
from ..sim.network import Envelope, Network
from .server import CoalitionServer

__all__ = ["DirectoryNode", "DirectorySyncClient"]


@dataclass(frozen=True)
class _CrlQuery:
    watermark: int  # send revocations with timestamp > watermark
    reply_to: str


@dataclass(frozen=True)
class _CrlResponse:
    revocations: tuple
    as_of: int


class DirectoryNode:
    """The directory endpoint: answers CRL queries from its store."""

    def __init__(self, name: str, store: CertificateStore, network: Network):
        self.name = name
        self.store = store
        self.network = network
        self.queries_served = 0

    def handle(self, envelope: Envelope) -> None:
        query = envelope.payload
        if not isinstance(query, _CrlQuery):
            return
        self.queries_served += 1
        fresh = tuple(
            cert
            for cert in self.store.all_certificates()
            if isinstance(cert, RevocationCertificate)
            and cert.timestamp > query.watermark
        )
        self.network.send(
            self.name,
            query.reply_to,
            _CrlResponse(revocations=fresh, as_of=self.network.clock.now),
        )


class DirectorySyncClient:
    """Server-side agent that pulls revocations from a directory."""

    def __init__(
        self,
        server: CoalitionServer,
        directory_name: str,
        network: Network,
    ):
        self.server = server
        self.directory_name = directory_name
        self.network = network
        self.watermark = -1
        self.last_synced_at: Optional[int] = None
        self.revocations_applied = 0
        self._applied_serials: set = set()

    # -------------------------------------------------------------- sync

    def request_sync(self) -> None:
        """Send one CRL query to the directory."""
        self.network.send(
            self.server.name,
            self.directory_name,
            _CrlQuery(watermark=self.watermark, reply_to=self.server.name),
        )

    def handle(self, envelope: Envelope) -> None:
        response = envelope.payload
        if not isinstance(response, _CrlResponse):
            return
        now = self.network.clock.now
        for revocation in response.revocations:
            if revocation.serial in self._applied_serials:
                continue  # duplicate (e.g. a replayed response envelope)
            try:
                self.server.receive_revocation(revocation, now=now)
            except Exception:
                # An untrusted/garbled revocation must not poison the
                # sync; it is simply skipped (and stays re-fetchable).
                continue
            self._applied_serials.add(revocation.serial)
            self.revocations_applied += 1
            self.watermark = max(self.watermark, revocation.timestamp)
        self.last_synced_at = now

    def staleness(self) -> Optional[int]:
        """Ticks since the last completed sync (None: never synced)."""
        if self.last_synced_at is None:
            return None
        return self.network.clock.now - self.last_synced_at
