"""A certificate/CRL directory service over the simulated network.

Section 4.3: "It is essential to verify the most recent available
revocation information before granting access to an object."  The push
model (the RA sends revocations to every server) is what
:meth:`CoalitionServer.receive_revocation` implements; real deployments
usually *pull*: servers periodically query a directory for fresh CRLs.

This module provides both halves over :class:`repro.sim.Network`:

* :class:`DirectoryNode` — wraps a :class:`~repro.pki.store
  .CertificateStore` and answers ``crl-query`` messages with every
  revocation newer than the querier's watermark;
* :class:`DirectorySyncClient` — a server-side agent that issues
  queries, applies returned revocations to the server's protocol state,
  and tracks staleness (ticks since the data the server holds was
  current at the directory).

The client is fault-tolerant: each query arms a timeout on the
network's :class:`~repro.sim.TickScheduler` and is retried with
exponential backoff when the response is delayed or dropped;
:meth:`DirectorySyncClient.start_periodic_sync` keeps a standing sync
loop alive.  Replayed or out-of-order responses are ignored (freshness
comes from the response's ``as_of``, never the local receive time), and
revocations the protocol rejects are counted rather than silently
swallowed — the freshness/availability trade-off of Section 4.3 made
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..pki.certificates import RevocationCertificate
from ..pki.store import CertificateStore
from ..pki.validation import CertificateError
from ..sim.network import Envelope, Network

__all__ = ["DirectoryNode", "DirectorySyncClient"]


@dataclass(frozen=True)
class _CrlQuery:
    watermark: int  # send revocations with timestamp > watermark
    reply_to: str


@dataclass(frozen=True)
class _CrlResponse:
    revocations: tuple
    as_of: int


class DirectoryNode:
    """The directory endpoint: answers CRL queries from its store."""

    def __init__(self, name: str, store: CertificateStore, network: Network):
        self.name = name
        self.store = store
        self.network = network
        self.queries_served = 0

    def handle(self, envelope: Envelope) -> None:
        query = envelope.payload
        if not isinstance(query, _CrlQuery):
            return
        self.queries_served += 1
        fresh = tuple(
            cert
            for cert in self.store.all_certificates()
            if isinstance(cert, RevocationCertificate)
            and cert.timestamp > query.watermark
        )
        self.network.send(
            self.name,
            query.reply_to,
            _CrlResponse(revocations=fresh, as_of=self.network.clock.now),
        )


class DirectorySyncClient:
    """Server-side agent that pulls revocations from a directory.

    One-shot use: call :meth:`request_sync` and drive the network.  For
    a standing loop, :meth:`start_periodic_sync` re-queries every
    ``interval`` ticks; each in-flight query times out after
    ``sync_timeout`` ticks and is retried up to ``max_retries`` times
    with exponential backoff before the round is abandoned (and counted
    in :attr:`sync_timeouts` — the next periodic tick tries again).
    """

    def __init__(
        self,
        server,
        directory_name: str,
        network: Network,
        sync_timeout: int = 10,
        max_retries: int = 3,
        backoff_factor: int = 2,
    ):
        if sync_timeout < 1:
            raise ValueError("sync_timeout must be at least one tick")
        self.server = server
        self.directory_name = directory_name
        self.network = network
        self.sync_timeout = sync_timeout
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.watermark = -1
        self.last_synced_at: Optional[int] = None
        self.revocations_applied = 0
        self.revocations_rejected = 0
        self.syncs_completed = 0
        self.sync_retries = 0
        self.sync_timeouts = 0
        self.stale_responses_ignored = 0
        self._applied_serials: set = set()
        # Freshness watermark over *responses*: the as_of of the newest
        # response applied.  Replays and reordered responses carry an
        # older (or equal) as_of and are ignored.
        self._last_as_of = -1
        self._awaiting = False
        self._attempts = 0
        self._timeout_handle = None
        self._periodic_handle = None

    # -------------------------------------------------------------- sync

    def request_sync(self) -> None:
        """Send one CRL query to the directory, arming a retry timeout."""
        self._attempts = 0
        self._send_query()

    def start_periodic_sync(self, interval: int, immediate: bool = True) -> None:
        """Re-query the directory every ``interval`` ticks until stopped."""
        if self._periodic_handle is not None:
            raise RuntimeError("periodic sync already running")
        self._periodic_handle = self.network.scheduler.call_every(
            interval, self._periodic_tick
        )
        if immediate:
            self.request_sync()

    def stop_periodic_sync(self) -> None:
        if self._periodic_handle is not None:
            self._periodic_handle.cancel()
            self._periodic_handle = None
        self._disarm_timeout()
        self._awaiting = False

    def _periodic_tick(self) -> None:
        if self._awaiting:
            return  # a query (or its retries) is still in flight
        self.request_sync()

    def _send_query(self) -> None:
        self._awaiting = True
        self.network.send(
            self.server.name,
            self.directory_name,
            _CrlQuery(watermark=self.watermark, reply_to=self.server.name),
        )
        wait = self.sync_timeout * (self.backoff_factor ** self._attempts)
        self._timeout_handle = self.network.scheduler.call_after(
            wait, self._on_timeout
        )

    def _on_timeout(self) -> None:
        if not self._awaiting:
            return
        if self._attempts < self.max_retries:
            self._attempts += 1
            self.sync_retries += 1
            self._send_query()
            return
        self.sync_timeouts += 1
        self._awaiting = False

    def _disarm_timeout(self) -> None:
        if self._timeout_handle is not None:
            self._timeout_handle.cancel()
            self._timeout_handle = None

    def handle(self, envelope: Envelope) -> None:
        response = envelope.payload
        if not isinstance(response, _CrlResponse):
            return
        if response.as_of <= self._last_as_of:
            # A replayed or reordered response: everything in it is no
            # newer than what we already applied, and treating it as a
            # completed sync would make staleness() under-report.
            self.stale_responses_ignored += 1
            return
        for revocation in response.revocations:
            if revocation.serial in self._applied_serials:
                continue  # duplicate (e.g. across overlapping responses)
            try:
                self.server.receive_revocation(
                    revocation, now=self.network.clock.now
                )
            except CertificateError:
                # An untrusted/garbled revocation must not poison the
                # sync, but it must not vanish either: operators watch
                # this counter.  The serial stays re-fetchable.
                self.revocations_rejected += 1
                continue
            self._applied_serials.add(revocation.serial)
            self.revocations_applied += 1
            self.watermark = max(self.watermark, revocation.timestamp)
        self._last_as_of = response.as_of
        # Freshness is what the *directory* vouched for, not when the
        # response happened to arrive.
        self.last_synced_at = response.as_of
        self.syncs_completed += 1
        self._awaiting = False
        self._attempts = 0
        self._disarm_timeout()

    def staleness(self) -> Optional[int]:
        """Ticks since the applied CRL data was current (None: never)."""
        if self.last_synced_at is None:
            return None
        return self.network.clock.now - self.last_synced_at

    def stats(self) -> Dict[str, int]:
        """Sync-health counters for dashboards and tests."""
        return {
            "syncs_completed": self.syncs_completed,
            "sync_retries": self.sync_retries,
            "sync_timeouts": self.sync_timeouts,
            "stale_responses_ignored": self.stale_responses_ignored,
            "revocations_applied": self.revocations_applied,
            "revocations_rejected": self.revocations_rejected,
        }
