"""The coalition system: domains, joint AA, server P, and the protocol.

Realizes Figure 1 end to end: autonomous domains with their own identity
CAs, a coalition attribute authority whose private key is shared across
the member domains, joint access requests (Figure 2), the authorization
protocol of Section 4.3, revocation, and coalition dynamics (Section 6).
"""

from .acl import ACL, ACLEntry, CoalitionObject, PolicyObject
from .authority import CoalitionAttributeAuthority, ConsensusError
from .audit import AuditEntry, AuditLog, AuditVerificationError
from .directory_service import DirectoryNode, DirectorySyncClient
from .domain import Domain, User
from .dynamics import Coalition, DynamicsReport
from .netflow import NetworkedAccessFlow, NetworkFlowResult
from .protocol import AuthorizationDecision, AuthorizationProtocol
from .requests import (
    JointAccessRequest,
    SignedRequestPart,
    build_joint_request,
    make_request_part,
)
from .policies import (
    ExtendedACL,
    GroupHierarchy,
    TimeConstrainedEntry,
    TimeWindow,
)
from .server import AccessResult, CoalitionServer
from .threshold_authority import ThresholdCoalitionAuthority

__all__ = [
    "ACL",
    "ACLEntry",
    "AuditEntry",
    "AuditLog",
    "AuditVerificationError",
    "DirectoryNode",
    "DirectorySyncClient",
    "CoalitionObject",
    "PolicyObject",
    "CoalitionAttributeAuthority",
    "ConsensusError",
    "Domain",
    "User",
    "Coalition",
    "DynamicsReport",
    "NetworkedAccessFlow",
    "NetworkFlowResult",
    "AuthorizationDecision",
    "AuthorizationProtocol",
    "JointAccessRequest",
    "SignedRequestPart",
    "build_joint_request",
    "make_request_part",
    "AccessResult",
    "CoalitionServer",
    "ExtendedACL",
    "GroupHierarchy",
    "TimeConstrainedEntry",
    "TimeWindow",
    "ThresholdCoalitionAuthority",
]
