"""The authorization protocol of Section 4.3 / Appendix E.

:class:`AuthorizationProtocol` is the verifier-side machine a coalition
server runs.  ``configure_*`` methods install the initial beliefs
(statements 1-11); :meth:`authorize` applies the four protocol steps to
a joint access request:

* **Step 0 (cryptographic)** — discharge the logic's ideal-signature
  assumption: verify certificate and request signatures, validity
  periods, freshness windows and replay nonces.
* **Step 1** — verify the signing keys: admit identity certificates
  (A10 + A22 jurisdiction chains) to believe ``K_u => U``.
* **Step 2** — establish group membership: admit the threshold
  attribute certificate (A10, A23, A9, A25/A28) to believe
  ``CP_{m,n} => G``, subject to believe-until-revoked.
* **Step 3** — verify the signed request parts (A10 + A19).
* **Step 4** — apply A38 to conclude ``G says "op" O`` and check the
  object's ACL and the certificate validity window.

Every decision returns the derivation as a proof tree, so a granted
request is *literally* the Appendix E derivation for that request.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.derivation import DerivationEngine, DerivationError
from ..obs.metrics import MetricsRegistry
from ..core.formulas import (
    Controls,
    Formula,
    KeySpeaksFor,
    Not,
    Says,
    SpeaksForGroup,
)
from ..core.patterns import AnyTime, match
from ..core.proofs import ProofStep
from ..core.temporal import FOREVER, Temporal
from ..core.terms import CompoundPrincipal, KeyRef, Principal, Var
from ..crypto.boneh_franklin import SharedRSAPublicKey
from ..crypto.rsa import RSAPublicKey
from ..pki.certificates import Certificate, RevocationCertificate
from ..pki.validation import CertificateError, validate_certificate
from .acl import ACL
from .requests import JointAccessRequest

__all__ = ["AuthorizationDecision", "AuthorizationProtocol", "NonceLedger"]

DEFAULT_FRESHNESS_WINDOW = 50


class NonceLedger:
    """Replay ledger bounded by the freshness window, safe to share.

    A nonce only needs remembering while a replay could still pass the
    staleness check, i.e. until ``stated_at + window < now``; entries map
    to their forget-after time and a deque drives expiry.  The ledger is
    lock-protected so protocol forks evaluating on different shard
    threads (:mod:`repro.service`) can share one global replay window —
    replay protection must span shards and epochs, unlike belief state.
    """

    def __init__(self, freshness_window: int = DEFAULT_FRESHNESS_WINDOW):
        self.freshness_window = freshness_window
        self._seen: Dict[str, int] = {}
        self._expiry: Deque[Tuple[int, str]] = deque()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._seen)

    def seen(self, nonce: str) -> bool:
        with self._lock:
            return nonce in self._seen

    def remember(self, nonce: str, now: int) -> None:
        forget_after = now + 2 * self.freshness_window
        with self._lock:
            self._seen[nonce] = forget_after
            self._expiry.append((forget_after, nonce))

    def purge(self, now: int) -> int:
        """Forget nonces whose replay would fail the freshness check anyway."""
        purged = 0
        with self._lock:
            queue = self._expiry
            while queue and queue[0][0] < now:
                forget_after, nonce = queue.popleft()
                if self._seen.get(nonce) == forget_after:
                    del self._seen[nonce]
                    purged += 1
        return purged

    def entries(self) -> List[Tuple[str, int]]:
        """A consistent ``(nonce, forget_after)`` snapshot of the ledger.

        Process-mode shard workers (:mod:`repro.service.procworker`)
        use this to seed a replacement worker's replay window with
        every nonce the service has already accepted — a restarted
        process must keep denying replays of pre-crash grants.
        """
        with self._lock:
            return list(self._seen.items())

    def absorb(self, entries: List[Tuple[str, int]]) -> None:
        """Merge ``(nonce, forget_after)`` pairs from another ledger."""
        with self._lock:
            for nonce, forget_after in entries:
                if self._seen.get(nonce, -1) < forget_after:
                    self._seen[nonce] = forget_after
                    self._expiry.append((forget_after, nonce))

    # The ledger travels inside pickled epoch snapshots when shard
    # workers run as separate processes; the lock is process-local
    # state and is recreated on load.
    def __getstate__(self):
        with self._lock:
            return {
                "freshness_window": self.freshness_window,
                "_seen": dict(self._seen),
                "_expiry": list(self._expiry),
            }

    def __setstate__(self, state) -> None:
        self.freshness_window = state["freshness_window"]
        self._seen = state["_seen"]
        self._expiry = deque(state["_expiry"])
        self._lock = threading.Lock()


@dataclass
class AuthorizationDecision:
    """Outcome of the authorization protocol for one request.

    ``cache_hits``/``cache_misses`` count certificate admissions served
    from / added to the protocol's admission cache while deciding this
    request; ``index_probes`` counts belief-store index lookups.  All
    three exist so load tests can assert fast-path behavior.
    """

    granted: bool
    reason: str
    operation: str
    object_name: str
    checked_at: int
    group: Optional[str] = None
    proof: Optional[ProofStep] = None
    derivation_steps: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    index_probes: int = 0

    def __bool__(self) -> bool:
        return self.granted


class AuthorizationProtocol:
    """Verifier-side state: trust anchors, beliefs, and the 4-step check."""

    def __init__(
        self,
        verifier_name: str,
        freshness_window: int = DEFAULT_FRESHNESS_WINDOW,
        trust_epoch: int = 0,
        nonce_ledger: Optional[NonceLedger] = None,
    ):
        self.verifier = Principal(verifier_name)
        self.engine = DerivationEngine(self.verifier)
        self.freshness_window = freshness_window
        self.trust_epoch = trust_epoch  # the paper's t*
        self._trusted_ca_keys: Dict[str, RSAPublicKey] = {}
        self._trusted_aa_keys: Dict[str, SharedRSAPublicKey] = {}
        self._trusted_ra_keys: Dict[str, RSAPublicKey] = {}
        # Replay protection.  The ledger may be shared across protocol
        # forks (service shards): replays must deny globally even when
        # belief state is sharded/epoched.
        # (`is not None`, not `or`: an empty shared ledger is falsy.)
        self.nonces = (
            nonce_ledger
            if nonce_ledger is not None
            else NonceLedger(freshness_window)
        )
        # Admission fast path: one Step 1/Step 2 derivation chain per
        # certificate, reused across requests until a revocation evicts
        # it.  Keyed by the (frozen, hashable) certificate object.
        self._cert_cache: Dict[Certificate, ProofStep] = {}
        self.metrics = MetricsRegistry("protocol")
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        self._cache_hits = self.metrics.counter("cert_cache_hits")
        self._cache_misses = self.metrics.counter("cert_cache_misses")
        self._decisions_made = self.metrics.counter("decisions_made")
        self._revocations_admitted = self.metrics.counter("revocations_admitted")
        self._gauge_cache_entries = self.metrics.gauge("cert_cache_entries")

    @property
    def decisions_made(self) -> int:
        return self._decisions_made.value

    def fork(self) -> "AuthorizationProtocol":
        """A copy-on-write clone for epoch snapshots (:mod:`repro.service`).

        The fork sees exactly the current beliefs, trust anchors and
        certificate admissions and diverges independently afterwards —
        revocations applied to one side never leak to the other.  The
        nonce ledger is deliberately *shared*: replay protection is a
        global property of the server, not of any one policy epoch.
        """
        clone = AuthorizationProtocol.__new__(AuthorizationProtocol)
        clone.verifier = self.verifier
        clone.engine = self.engine.fork()
        clone.freshness_window = self.freshness_window
        clone.trust_epoch = self.trust_epoch
        clone._trusted_ca_keys = dict(self._trusted_ca_keys)
        clone._trusted_aa_keys = dict(self._trusted_aa_keys)
        clone._trusted_ra_keys = dict(self._trusted_ra_keys)
        clone.nonces = self.nonces
        clone._cert_cache = dict(self._cert_cache)
        clone.metrics = self.metrics.fork()
        clone._bind_metrics()
        return clone

    # ----------------------------------------------------- trust set-up

    def trust_domain_ca(self, ca_name: str, ca_key: RSAPublicKey) -> None:
        """Install statements 6-11: CA key + identity-cert jurisdiction."""
        self._trusted_ca_keys[ca_name] = ca_key
        ca = Principal(ca_name)
        key_ref = KeyRef(ca_key.fingerprint(), f"K_{ca_name}")
        self.engine.believe(
            KeySpeaksFor(key_ref, Temporal.all(self.trust_epoch, FOREVER, self.verifier), ca),
            note=f"trusted CA key for {ca_name}",
        )
        id_schema = KeySpeaksFor(Var("K"), AnyTime("iv"), Var("Q"))
        self.engine.believe(
            Controls(ca, Temporal.all(0, FOREVER), id_schema),
            note=f"stmt 6/8/10: {ca_name} controls identity bindings",
        )
        self.engine.believe(
            Controls(
                ca,
                Temporal.all(self.trust_epoch, FOREVER, self.verifier),
                Says(ca, AnyTime("tca"), id_schema),
            ),
            note=f"stmt 7/9/11: {ca_name} controls its certificate timestamps",
        )
        # CAs also have jurisdiction over revoking their own bindings
        # (identity-certificate revocation, Stubblebine-Wright style).
        neg_id_schema = Not(id_schema)
        self.engine.believe(
            Controls(ca, Temporal.all(0, FOREVER), neg_id_schema),
            note=f"{ca_name} controls identity revocation",
        )
        self.engine.believe(
            Controls(
                ca,
                Temporal.all(self.trust_epoch, FOREVER, self.verifier),
                Says(ca, AnyTime("tca"), neg_id_schema),
            ),
            note=f"{ca_name} controls its revocation timestamps",
        )

    def trust_coalition_aa(
        self,
        aa_name: str,
        shared_key: SharedRSAPublicKey,
        member_domains: List[str],
        threshold: Optional[int] = None,
    ) -> None:
        """Install statements 1-5: shared key ownership + AA jurisdiction.

        ``threshold`` is the m of the key's m-of-n sharing; it defaults
        to n (the consensus design).  An m < n records the Section 3.3
        availability variant in statement 1.
        """
        self._trusted_aa_keys[aa_name] = shared_key
        aa = Principal(aa_name)
        domains = CompoundPrincipal.of([Principal(d) for d in member_domains])
        key_ref = KeyRef(shared_key.fingerprint(), f"K_{aa_name}")
        m = domains.size if threshold is None else threshold
        # Statement 1: K_AA => CP_{m,n} (m == n for the consensus design).
        self.engine.believe(
            KeySpeaksFor(
                key_ref,
                Temporal.all(self.trust_epoch, FOREVER, self.verifier),
                domains.threshold(m),
            ),
            note=f"stmt 1: {aa_name}'s shared key is owned by {member_domains}",
        )
        self.engine.register_alias(domains, aa)
        membership_schema = SpeaksForGroup(Var("CP"), AnyTime("iv"), Var("G"))
        # Statements 2/3 (and 4/5 for simple principals, subsumed by Var).
        self.engine.believe(
            Controls(aa, Temporal.all(0, FOREVER), membership_schema),
            note=f"stmt 2/3: {aa_name} controls group membership",
        )
        self.engine.believe(
            Controls(
                aa,
                Temporal.all(self.trust_epoch, FOREVER, self.verifier),
                Says(aa, AnyTime("taa"), membership_schema),
            ),
            note=f"stmt 4/5: {aa_name} controls its certificate timestamps",
        )

    def trust_revocation_authority(
        self, ra_name: str, ra_key: RSAPublicKey
    ) -> None:
        """Authorize an RA to revoke memberships on behalf of the AA."""
        self._trusted_ra_keys[ra_name] = ra_key
        ra = Principal(ra_name)
        key_ref = KeyRef(ra_key.fingerprint(), f"K_{ra_name}")
        self.engine.believe(
            KeySpeaksFor(
                key_ref, Temporal.all(self.trust_epoch, FOREVER, self.verifier), ra
            ),
            note=f"trusted RA key for {ra_name}",
        )
        revocation_schema = Not(SpeaksForGroup(Var("CP"), AnyTime("iv"), Var("G")))
        self.engine.believe(
            Controls(ra, Temporal.all(0, FOREVER), revocation_schema),
            note=f"{ra_name} controls membership revocation",
        )
        self.engine.believe(
            Controls(
                ra,
                Temporal.all(self.trust_epoch, FOREVER, self.verifier),
                Says(ra, AnyTime("tra"), revocation_schema),
            ),
            note=f"{ra_name} controls its revocation timestamps",
        )

    # ------------------------------------------------- admission cache

    def _admit_cached(self, cert: Certificate, now: int) -> ProofStep:
        """Admit a certificate, memoizing the derivation chain.

        The derived payload is time-independent (it carries its own
        validity interval), so the A10/A19/A23/A22 chain only needs to
        run once per certificate.  Validity, freshness and revocation
        are still checked on every request by the caller; a received
        revocation additionally evicts affected entries.
        """
        proof = self._cert_cache.get(cert)
        if proof is not None:
            self._cache_hits.inc()
            return proof
        proof = self.engine.admit_certificate(cert.idealize(), now)
        self._cache_misses.inc()
        self._cert_cache[cert] = proof
        return proof

    def _evict_revoked(self, negation: Formula) -> int:
        """Drop cached admissions whose payload ``negation`` defeats.

        ``negation`` is the believed ``not(...)`` revocation payload;
        any cached conclusion with the same subject/key and group is
        evicted regardless of its validity interval, forcing the next
        request through the full believe-until-revoked derivation.
        """
        if not isinstance(negation, Not):
            return 0
        body = negation.body
        schema = body
        if dataclasses.is_dataclass(body) and hasattr(body, "time"):
            schema = dataclasses.replace(body, time=AnyTime())
        evicted = [
            cert
            for cert, proof in self._cert_cache.items()
            if match(schema, proof.conclusion) is not None
        ]
        for cert in evicted:
            del self._cert_cache[cert]
        return len(evicted)

    # --------------------------------------------------- replay window

    def _remember_nonce(self, nonce: str, now: int) -> None:
        self.nonces.remember(nonce, now)

    def _purge_nonces(self, now: int) -> None:
        """Forget nonces whose replay would fail the freshness check anyway.

        Runs on every :meth:`authorize` *and* every
        :meth:`apply_revocation`, so the ledger stays bounded even when
        traffic is all revocations (or all requests).
        """
        self.nonces.purge(now)

    # ------------------------------------------------------- revocation

    def apply_revocation(
        self, revocation: RevocationCertificate, now: int
    ) -> ProofStep:
        """Admit a revocation certificate (Message 2 of Section 4.3).

        After this, membership queries for the revoked subject/group
        fail for any check time >= the revocation's effective time, and
        cached admissions of the revoked certificate are evicted.
        """
        ra_key = self._trusted_ra_keys.get(revocation.issuer) or (
            self._trusted_ca_keys.get(revocation.issuer)
        )
        if ra_key is None:
            raise CertificateError(
                f"no trusted revocation key for issuer {revocation.issuer}"
            )
        validate_certificate(revocation, ra_key)
        proof = self.engine.admit_revocation(revocation.idealize(), now)
        self._revocations_admitted.inc()
        self._evict_revoked(proof.conclusion)
        # Purge on the revocation path too: nonce expiry must not depend
        # on request arrival alone (sustained revocation-only traffic
        # would otherwise pin the ledger at its high-water mark).
        self._purge_nonces(now)
        return proof

    # ----------------------------------------------------------- auditing

    def audit(self, decision: AuthorizationDecision) -> bool:
        """Independently re-check a granted decision's proof tree.

        Re-applies every cited axiom to the premise conclusions and
        checks each premise against the verifier's current beliefs.
        Raises :class:`repro.core.checker.ProofCheckError` on any
        discrepancy — a tampered or fabricated proof never passes.
        """
        from ..core.checker import ProofChecker

        if decision.proof is None:
            raise ValueError("decision carries no proof to audit")
        checker = ProofChecker(
            trusted_premises=set(self.engine.store.snapshot()),
            aliases=self.engine.alias_map(),
        )
        return checker.check(decision.proof)

    # ------------------------------------------------------ authorization

    def authorize(
        self, request: JointAccessRequest, acl: ACL, now: int
    ) -> AuthorizationDecision:
        """Run Steps 0-4 on a joint access request against ``acl``."""
        self._decisions_made.inc()
        probes_before = self.engine.store.stats()["index_probes"]
        hits_before = self._cache_hits.value
        misses_before = self._cache_misses.value

        def deny(reason: str) -> AuthorizationDecision:
            return AuthorizationDecision(
                granted=False,
                reason=reason,
                operation=request.operation,
                object_name=request.object_name,
                checked_at=now,
                cache_hits=self._cache_hits.value - hits_before,
                cache_misses=self._cache_misses.value - misses_before,
                index_probes=self.engine.store.stats()["index_probes"]
                - probes_before,
            )

        # ---- Step 0: cryptographic checks --------------------------------
        certs_by_subject = {}
        for cert in request.identity_certificates:
            ca_key = self._trusted_ca_keys.get(cert.issuer)
            if ca_key is None:
                return deny(f"untrusted identity CA {cert.issuer!r}")
            try:
                validate_certificate(cert, ca_key, now)
            except CertificateError as exc:
                return deny(f"identity certificate rejected: {exc}")
            certs_by_subject[cert.subject] = cert

        tac = request.attribute_certificate
        aa_key = self._trusted_aa_keys.get(tac.issuer)
        if aa_key is None:
            return deny(f"untrusted attribute authority {tac.issuer!r}")
        try:
            validate_certificate(tac, aa_key, now)
        except CertificateError as exc:
            return deny(f"threshold attribute certificate rejected: {exc}")

        tac_keys = dict(tac.subjects)
        for part in request.parts:
            cert = certs_by_subject.get(part.user)
            if cert is None:
                return deny(f"no identity certificate supplied for {part.user}")
            if not cert.subject_key.verify(part.payload_bytes(), part.signature):
                return deny(f"bad request signature from {part.user}")
            if part.user not in tac_keys:
                return deny(f"{part.user} is not a subject of the certificate")
            if tac_keys[part.user] != cert.subject_key_id:
                return deny(
                    f"{part.user}'s certificate key differs from the key the "
                    "threshold certificate binds (selective distribution)"
                )
            if not self.engine.check_freshness(
                part.stated_at, now, self.freshness_window
            ):
                return deny(
                    f"stale request part from {part.user} "
                    f"(stated {part.stated_at}, now {now})"
                )
            if (part.operation, part.object_name) != (
                request.operation,
                request.object_name,
            ):
                return deny(f"{part.user}'s part signs a different request")
        nonces = {part.nonce for part in request.parts}
        if len(nonces) != 1:
            return deny("request parts carry inconsistent nonces")
        nonce = nonces.pop()
        self._purge_nonces(now)
        if self.nonces.seen(nonce):
            return deny("replayed request (nonce already accepted)")

        # ---- Steps 1-4: the derivation ------------------------------------
        try:
            # Step 1: believe the users' key bindings.
            for cert in request.identity_certificates:
                self._admit_cached(cert, now)
            # Step 2: believe the threshold membership.
            membership_proof = self._admit_cached(tac, now)
            membership = membership_proof.conclusion
            revoked = self.engine.membership_revoked(
                membership, now, stated_at=tac.timestamp
            )
            if revoked is not None:
                return deny(
                    "membership revoked: believe-until-revoked defeats the "
                    f"certificate ({revoked.conclusion})"
                )
            # Step 3: believe the signed request parts.
            says_proofs = []
            for part in request.parts:
                _says_body, says_signed = self.engine.admit_signed_utterance(
                    part.idealize(), now
                )
                says_proofs.append(says_signed)
            # Step 4: A38 concludes "G says op", then check the ACL.
            group_says_proof = self.engine.derive_group_says(
                membership_proof, says_proofs
            )
        except DerivationError as exc:
            return deny(f"derivation failed: {exc}")

        group = tac.group
        if not tac.validity.contains(now):
            return deny("certificate validity window excludes decision time")
        if not acl.allows(group, request.operation, now):
            return deny(
                f"ACL grants no {request.operation!r} to group {group!r}"
            )
        self._remember_nonce(nonce, now)
        return AuthorizationDecision(
            granted=True,
            reason="access approved",
            operation=request.operation,
            object_name=request.object_name,
            checked_at=now,
            group=group,
            proof=group_says_proof,
            derivation_steps=group_says_proof.size(),
            cache_hits=self._cache_hits.value - hits_before,
            cache_misses=self._cache_misses.value - misses_before,
            index_probes=self.engine.store.stats()["index_probes"]
            - probes_before,
        )

    # ----------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        """Engine + fast-path counters, for benchmarks and load tests.

        A thin view over the unified metrics registries; the flat dict
        shape predates the registry and stays stable for callers.
        """
        return {
            **self.engine.stats(),
            "decisions_made": self.decisions_made,
            "cert_cache_entries": len(self._cert_cache),
            "cert_cache_hits": self._cache_hits.value,
            "cert_cache_misses": self._cache_misses.value,
            "tracked_nonces": len(self.nonces),
            "nonce_cache_size": len(self.nonces),
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Merged protocol + engine + store registry snapshot.

        The shared nonce ledger is *not* gauged here: it is global to
        the server/service that owns it, and summing one shared size
        across shard forks would multiply it (see DESIGN.md §10).
        """
        self._gauge_cache_entries.set(len(self._cert_cache))
        return MetricsRegistry.merge(
            [self.metrics.snapshot(), self.engine.metrics_snapshot()]
        )
