"""The coalition server P: objects, policies, and mediated access.

Server P (Figure 1) manages jointly owned objects, runs the
authorization protocol on every joint access request, executes granted
operations (including the encrypted read response of Figure 2(d)), and
maintains the policy objects whose updates are themselves mediated by
threshold certificates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..crypto.rsa import RSAPublicKey, hybrid_encrypt
from ..pki.certificates import RevocationCertificate
from .acl import ACL, ACLEntry, CoalitionObject, PolicyObject
from .protocol import AuthorizationDecision, AuthorizationProtocol
from .requests import JointAccessRequest

__all__ = ["AccessResult", "CoalitionServer"]


@dataclass
class AccessResult:
    """A decision plus (for granted reads) the encrypted response."""

    decision: AuthorizationDecision
    encrypted_response: Optional[Tuple[int, bytes]] = None

    @property
    def granted(self) -> bool:
        return self.decision.granted


class CoalitionServer:
    """Application server enforcing jointly administered policies."""

    def __init__(
        self,
        name: str = "ServerP",
        freshness_window: int = 50,
        trust_epoch: int = 0,
    ):
        self.name = name
        self.protocol = AuthorizationProtocol(
            verifier_name=name,
            freshness_window=freshness_window,
            trust_epoch=trust_epoch,
        )
        self.objects: Dict[str, CoalitionObject] = {}
        self.access_log: List[AuthorizationDecision] = []
        # Fault-tolerance tallies reported by the networked flow layer
        # (repro.coalition.netflow) via record_flow_event; surfaced in
        # stats() next to the protocol's fast-path counters.
        self.flow_events: Dict[str, int] = {
            "flow_retries": 0,
            "flows_timed_out": 0,
            "flows_degraded": 0,
            "flows_abandoned": 0,
            "flow_replays_suppressed": 0,
        }

    # -------------------------------------------------------- management

    def create_object(
        self,
        name: str,
        content: bytes,
        acl_entries: Iterable[ACLEntry],
        admin_group: str,
    ) -> CoalitionObject:
        """Create a jointly owned object with its ACL and policy object."""
        if name in self.objects:
            raise ValueError(f"object {name!r} already exists")
        obj = CoalitionObject(
            name=name,
            content=content,
            policy=PolicyObject(acl=ACL(list(acl_entries)), admin_group=admin_group),
        )
        self.objects[name] = obj
        return obj

    def object_acl(self, name: str) -> ACL:
        return self.objects[name].policy.acl

    # ----------------------------------------------------------- access

    def handle_request(
        self,
        request: JointAccessRequest,
        now: int,
        write_content: Optional[bytes] = None,
        responder_key: Optional[RSAPublicKey] = None,
    ) -> AccessResult:
        """Authorize and (when granted) execute a joint access request.

        * ``write``: replaces the object content with ``write_content``.
        * ``read``: returns the content encrypted under ``responder_key``
          (the requestor's public key, Figure 2(d)).
        * any other operation: authorization only (callers execute).
        """
        obj = self.objects.get(request.object_name)
        if obj is None:
            decision = AuthorizationDecision(
                granted=False,
                reason=f"no such object {request.object_name!r}",
                operation=request.operation,
                object_name=request.object_name,
                checked_at=now,
            )
            self.access_log.append(decision)
            return AccessResult(decision=decision)

        decision = self.protocol.authorize(request, obj.policy.acl, now)
        self.access_log.append(decision)
        if not decision.granted:
            return AccessResult(decision=decision)

        if request.operation == "write":
            if write_content is None:
                raise ValueError("write request needs write_content")
            obj.write(write_content)
            return AccessResult(decision=decision)
        if request.operation == "read":
            content = obj.read()
            encrypted = None
            if responder_key is not None:
                encrypted = hybrid_encrypt(responder_key, content)
            return AccessResult(decision=decision, encrypted_response=encrypted)
        return AccessResult(decision=decision)

    def update_policy(
        self,
        request: JointAccessRequest,
        new_entries: Iterable[ACLEntry],
        now: int,
    ) -> AuthorizationDecision:
        """Set/update a policy object (operation ``set_policy``).

        The request must be authorized against the object's *admin*
        group — policy updates are mediated exactly like data access.
        """
        obj = self.objects.get(request.object_name)
        if obj is None:
            decision = AuthorizationDecision(
                granted=False,
                reason=f"no such object {request.object_name!r}",
                operation=request.operation,
                object_name=request.object_name,
                checked_at=now,
            )
            self.access_log.append(decision)
            return decision
        admin_acl = ACL([ACLEntry.of(obj.policy.admin_group, ["set_policy"])])
        decision = self.protocol.authorize(request, admin_acl, now)
        self.access_log.append(decision)
        if decision.granted:
            obj.policy.update(new_entries)
        return decision

    # -------------------------------------------------------- revocation

    def receive_revocation(
        self, revocation: RevocationCertificate, now: int
    ) -> None:
        """Admit a revocation pushed by the coalition RA."""
        self.protocol.apply_revocation(revocation, now)

    # ----------------------------------------------------------- metrics

    def record_flow_event(self, kind: str, count: int = 1) -> None:
        """Tally a fault-tolerance event (retry, timeout, degradation...).

        ``kind`` must be one of the keys initialised in
        :attr:`flow_events`; unknown kinds raise so a typo in the flow
        layer cannot silently lose a counter.
        """
        if kind not in self.flow_events:
            raise ValueError(f"unknown flow event kind {kind!r}")
        self.flow_events[kind] += count

    def grant_rate(self) -> float:
        if not self.access_log:
            return 0.0
        granted = sum(1 for d in self.access_log if d.granted)
        return granted / len(self.access_log)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Namespaced counters: ``protocol`` and ``server`` layers.

        The two layers are kept in separate sub-dicts (rather than one
        flat spread) so a counter added to either side can never shadow
        a same-named counter on the other — a flat merge silently kept
        whichever layer spread last.
        """
        return {
            "protocol": self.protocol.stats(),
            "server": {
                **self.flow_events,
                "objects": len(self.objects),
                "requests_handled": len(self.access_log),
            },
        }
