"""The coalition server P: objects, policies, and mediated access.

Server P (Figure 1) manages jointly owned objects, runs the
authorization protocol on every joint access request, executes granted
operations (including the encrypted read response of Figure 2(d)), and
maintains the policy objects whose updates are themselves mediated by
threshold certificates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, Optional, Tuple

from ..crypto.rsa import RSAPublicKey, hybrid_encrypt
from ..obs.metrics import MetricsRegistry
from ..pki.certificates import RevocationCertificate
from .acl import ACL, ACLEntry, CoalitionObject, PolicyObject
from .protocol import AuthorizationDecision, AuthorizationProtocol
from .requests import JointAccessRequest

__all__ = ["AccessResult", "CoalitionServer"]

DEFAULT_ACCESS_LOG_LIMIT = 10_000

_FLOW_EVENT_KINDS = (
    "flow_retries",
    "flows_timed_out",
    "flows_degraded",
    "flows_abandoned",
    "flow_replays_suppressed",
)


@dataclass
class AccessResult:
    """A decision plus (for granted reads) the encrypted response."""

    decision: AuthorizationDecision
    encrypted_response: Optional[Tuple[int, bytes]] = None

    @property
    def granted(self) -> bool:
        return self.decision.granted


class CoalitionServer:
    """Application server enforcing jointly administered policies."""

    def __init__(
        self,
        name: str = "ServerP",
        freshness_window: int = 50,
        trust_epoch: int = 0,
        access_log_limit: int = DEFAULT_ACCESS_LOG_LIMIT,
        audit_log=None,
        wal_dir: Optional[str] = None,
        wal_sync_every: int = 64,
        wal_segment_bytes: int = 1 << 20,
    ):
        self.name = name
        self.protocol = AuthorizationProtocol(
            verifier_name=name,
            freshness_window=freshness_window,
            trust_epoch=trust_epoch,
        )
        self.objects: Dict[str, CoalitionObject] = {}
        # Optional hash-chained audit log; with ``wal_dir`` it becomes
        # durable — every decision streams into the segmented WAL and
        # an existing directory is recovered (torn tail healed, chain
        # resumed) before the server takes traffic.  Imported lazily:
        # repro.storage depends on this package.
        self.audit_log = audit_log
        self.wal = None
        self.recovered = None
        self._revocations_seen = 0
        if wal_dir is not None:
            from ..storage.recovery import open_wal_log

            self.audit_log, self.wal, self.recovered = open_wal_log(
                wal_dir,
                audit_log=audit_log,
                segment_bytes=wal_segment_bytes,
                sync_every=wal_sync_every,
            )
        # The retained decision log is bounded (oldest entries fall off)
        # so sustained traffic cannot grow server memory without limit;
        # grant_rate()/requests_handled run on O(1) counters covering
        # the *full* history, not just the retained window.
        if access_log_limit is not None and access_log_limit < 1:
            raise ValueError("access_log_limit must be >= 1 (or None)")
        self.access_log_limit = access_log_limit
        self.access_log: Deque[AuthorizationDecision] = deque(
            maxlen=access_log_limit
        )
        self.metrics = MetricsRegistry("server")
        self._granted_total = self.metrics.counter("granted_total")
        self._denied_total = self.metrics.counter("denied_total")
        self._requests_handled = self.metrics.counter("requests_handled")
        self._gauge_objects = self.metrics.gauge("objects")
        self._gauge_log_retained = self.metrics.gauge("access_log_retained")
        # Fault-tolerance tallies reported by the networked flow layer
        # (repro.coalition.netflow) via record_flow_event; surfaced in
        # stats() next to the protocol's fast-path counters.
        self._flow_events: Dict[str, object] = {
            kind: self.metrics.counter(kind) for kind in _FLOW_EVENT_KINDS
        }

    @property
    def flow_events(self) -> Dict[str, int]:
        """Flow-event tallies as a plain dict view (name -> count)."""
        return {kind: c.value for kind, c in self._flow_events.items()}

    def _record_decision(self, decision: AuthorizationDecision) -> None:
        """Append to the bounded log and bump the full-history counters."""
        self.access_log.append(decision)
        if self.audit_log is not None:
            self.audit_log.append(decision)
        self._requests_handled.inc()
        if decision.granted:
            self._granted_total.inc()
        else:
            self._denied_total.inc()

    # -------------------------------------------------------- management

    def create_object(
        self,
        name: str,
        content: bytes,
        acl_entries: Iterable[ACLEntry],
        admin_group: str,
    ) -> CoalitionObject:
        """Create a jointly owned object with its ACL and policy object."""
        if name in self.objects:
            raise ValueError(f"object {name!r} already exists")
        obj = CoalitionObject(
            name=name,
            content=content,
            policy=PolicyObject(acl=ACL(list(acl_entries)), admin_group=admin_group),
        )
        self.objects[name] = obj
        return obj

    def object_acl(self, name: str) -> ACL:
        return self.objects[name].policy.acl

    # ----------------------------------------------------------- access

    def handle_request(
        self,
        request: JointAccessRequest,
        now: int,
        write_content: Optional[bytes] = None,
        responder_key: Optional[RSAPublicKey] = None,
    ) -> AccessResult:
        """Authorize and (when granted) execute a joint access request.

        * ``write``: replaces the object content with ``write_content``.
        * ``read``: returns the content encrypted under ``responder_key``
          (the requestor's public key, Figure 2(d)).
        * any other operation: authorization only (callers execute).
        """
        obj = self.objects.get(request.object_name)
        if obj is None:
            decision = AuthorizationDecision(
                granted=False,
                reason=f"no such object {request.object_name!r}",
                operation=request.operation,
                object_name=request.object_name,
                checked_at=now,
            )
            self._record_decision(decision)
            return AccessResult(decision=decision)

        decision = self.protocol.authorize(request, obj.policy.acl, now)
        self._record_decision(decision)
        if not decision.granted:
            return AccessResult(decision=decision)

        if request.operation == "write":
            if write_content is None:
                raise ValueError("write request needs write_content")
            obj.write(write_content)
            return AccessResult(decision=decision)
        if request.operation == "read":
            content = obj.read()
            encrypted = None
            if responder_key is not None:
                encrypted = hybrid_encrypt(responder_key, content)
            return AccessResult(decision=decision, encrypted_response=encrypted)
        return AccessResult(decision=decision)

    def update_policy(
        self,
        request: JointAccessRequest,
        new_entries: Iterable[ACLEntry],
        now: int,
    ) -> AuthorizationDecision:
        """Set/update a policy object (operation ``set_policy``).

        The request must be authorized against the object's *admin*
        group — policy updates are mediated exactly like data access.
        """
        obj = self.objects.get(request.object_name)
        if obj is None:
            decision = AuthorizationDecision(
                granted=False,
                reason=f"no such object {request.object_name!r}",
                operation=request.operation,
                object_name=request.object_name,
                checked_at=now,
            )
            self._record_decision(decision)
            return decision
        admin_acl = ACL([ACLEntry.of(obj.policy.admin_group, ["set_policy"])])
        decision = self.protocol.authorize(request, admin_acl, now)
        self._record_decision(decision)
        if decision.granted:
            obj.policy.update(new_entries)
        return decision

    # -------------------------------------------------------- revocation

    def receive_revocation(
        self, revocation: RevocationCertificate, now: int
    ) -> None:
        """Admit a revocation pushed by the coalition RA."""
        self.protocol.apply_revocation(revocation, now)
        self._revocations_seen += 1
        if self.wal is not None:
            from ..storage.wal import EpochRecord

            self.wal.append_epoch(
                EpochRecord(
                    kind="revocation",
                    epoch_id=self._revocations_seen,
                    detail=revocation.revoked_serial,
                    timestamp=now,
                )
            )

    # --------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Flush and close the WAL, if one is bound (idempotent)."""
        if self.wal is not None:
            self.wal.close()

    # ----------------------------------------------------------- metrics

    def record_flow_event(self, kind: str, count: int = 1) -> None:
        """Tally a fault-tolerance event (retry, timeout, degradation...).

        ``kind`` must be one of the keys initialised in
        :attr:`flow_events`; unknown kinds raise so a typo in the flow
        layer cannot silently lose a counter.
        """
        counter = self._flow_events.get(kind)
        if counter is None:
            raise ValueError(f"unknown flow event kind {kind!r}")
        counter.inc(count)

    def grant_rate(self) -> float:
        """Granted fraction over the *full* decision history, O(1).

        Counters cover every decision ever handled, so the rate keeps
        its original semantics even after the bounded retained log has
        dropped old entries.
        """
        total = self._granted_total.value + self._denied_total.value
        if total == 0:
            return 0.0
        return self._granted_total.value / total

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Namespaced counters: ``protocol`` and ``server`` layers.

        The two layers are kept in separate sub-dicts (rather than one
        flat spread) so a counter added to either side can never shadow
        a same-named counter on the other — a flat merge silently kept
        whichever layer spread last.
        """
        return {
            "protocol": self.protocol.stats(),
            "server": {
                **self.flow_events,
                "objects": len(self.objects),
                "requests_handled": self._requests_handled.value,
                "granted_total": self._granted_total.value,
                "denied_total": self._denied_total.value,
                "access_log_retained": len(self.access_log),
            },
        }

    def metrics_snapshot(self) -> "Dict[str, object]":
        """Merged server + protocol + engine + store registry snapshot."""
        self._gauge_objects.set(len(self.objects))
        self._gauge_log_retained.set(len(self.access_log))
        return MetricsRegistry.merge(
            [self.metrics.snapshot(), self.protocol.metrics_snapshot()]
        )
