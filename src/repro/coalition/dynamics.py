"""Coalition formation and dynamics (joins and leaves, Section 6).

The paper: "coalition dynamics would require establishing a new, shared
public-key and consequently would require large-scale revocation and
re-distribution of certificates."  :class:`Coalition` implements exactly
that: on every membership change it

1. revokes every live threshold attribute certificate,
2. clears all old key shares,
3. runs shared key generation over the *new* member set,
4. re-issues certificates whose subjects all still belong, and
5. re-configures every attached server's trust anchors.

:class:`DynamicsReport` captures the cost (certificates revoked and
re-issued, joint signatures applied, messages exchanged) — the data for
experiment E11.  Proactive share *refresh* (Wu et al.) is also exposed,
to contrast its constant cost against full re-keying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..crypto.refresh import refresh_shares
from ..pki.certificates import ThresholdAttributeCertificate, ValidityPeriod
from .authority import CoalitionAttributeAuthority
from .domain import Domain, User
from .server import CoalitionServer

__all__ = ["DynamicsReport", "Coalition"]


@dataclass
class DynamicsReport:
    """Cost accounting for one membership-change event."""

    event: str  # "form", "join", "leave", "refresh"
    domain: str
    certificates_revoked: int = 0
    certificates_reissued: int = 0
    certificates_dropped: int = 0  # subjects no longer eligible
    joint_signatures: int = 0
    keygen_messages: int = 0
    keygen_rounds: int = 0
    servers_reconfigured: int = 0

    def total_operations(self) -> int:
        return (
            self.certificates_revoked
            + self.certificates_reissued
            + self.joint_signatures
            + self.keygen_messages
        )


class Coalition:
    """A dynamic coalition: member domains, the joint AA, and servers."""

    def __init__(
        self,
        name: str,
        key_bits: int = 512,
        dealerless: bool = False,
        audit_log=None,
    ):
        self.name = name
        self.key_bits = key_bits
        self.dealerless = dealerless
        self.domains: List[Domain] = []
        self.authority: Optional[CoalitionAttributeAuthority] = None
        self.servers: List[CoalitionServer] = []
        self.history: List[DynamicsReport] = []
        # Optional AuditLog: membership changes leave signed
        # ``dynamics-*`` events in the same hash chain as decisions,
        # so an auditor can see *why* a certificate population turned
        # over (which domain joined/left, how many certs were revoked
        # and re-issued), not just the revocations themselves.
        self.audit_log = audit_log

    def _audit(self, report: DynamicsReport, now: int) -> None:
        if self.audit_log is None:
            return
        self.audit_log.append_event(
            timestamp=now,
            operation=report.event,
            object_name=self.name,
            kind=f"dynamics-{report.event}",
            detail=(
                f"domain={report.domain} "
                f"revoked={report.certificates_revoked} "
                f"reissued={report.certificates_reissued} "
                f"dropped={report.certificates_dropped}"
            ),
        )

    # ---------------------------------------------------------- lifecycle

    def form(self, domains: Sequence[Domain]) -> DynamicsReport:
        """Establish the coalition: shared keygen + AA creation."""
        if self.authority is not None:
            raise RuntimeError("coalition already formed")
        self.domains = list(domains)
        self.authority = CoalitionAttributeAuthority.establish(
            self.domains,
            name=f"AA_{self.name}",
            key_bits=self.key_bits,
            dealerless=self.dealerless,
        )
        report = DynamicsReport(
            event="form",
            domain=",".join(d.name for d in self.domains),
            keygen_messages=self.authority.keygen_stats.messages_exchanged,
            keygen_rounds=self.authority.keygen_stats.candidate_rounds,
        )
        self.history.append(report)
        self._audit(report, now=0)
        return report

    def attach_server(self, server: CoalitionServer) -> None:
        """Configure a server's trust anchors for this coalition."""
        if self.authority is None:
            raise RuntimeError("form the coalition before attaching servers")
        self._configure_server(server)
        self.servers.append(server)

    def _configure_server(self, server: CoalitionServer) -> None:
        assert self.authority is not None
        server.protocol.trust_coalition_aa(
            self.authority.name,
            self.authority.public_key,
            [d.name for d in self.domains],
        )
        server.protocol.trust_revocation_authority(
            self.authority.revocation_authority.name,
            self.authority.revocation_authority.public_key,
        )
        for domain in self.domains:
            server.protocol.trust_domain_ca(domain.ca.name, domain.ca.public_key)

    # ------------------------------------------------------------ dynamics

    def join(self, new_domain: Domain, now: int) -> DynamicsReport:
        """A domain joins: full re-key + mass revocation/re-issue."""
        if self.authority is None:
            raise RuntimeError("coalition not formed")
        if new_domain in self.domains:
            raise ValueError(f"{new_domain.name} is already a member")
        return self._rekey("join", new_domain, self.domains + [new_domain], now)

    def leave(self, leaving_domain: Domain, now: int) -> DynamicsReport:
        """A domain leaves: full re-key + mass revocation/re-issue.

        The joint AA survives the departure (Requirement I: no single
        domain can break up the coalition by withdrawing).
        """
        if self.authority is None:
            raise RuntimeError("coalition not formed")
        if leaving_domain not in self.domains:
            raise ValueError(f"{leaving_domain.name} is not a member")
        remaining = [d for d in self.domains if d is not leaving_domain]
        if not remaining:
            raise ValueError("cannot dissolve the coalition via leave()")
        report = self._rekey("leave", leaving_domain, remaining, now)
        leaving_domain.clear_key_share()
        return report

    def refresh(self, now: int) -> DynamicsReport:
        """Proactive share refresh (same members, same public key)."""
        if self.authority is None:
            raise RuntimeError("coalition not formed")
        old_shares = [d.key_share for d in self.domains]
        new_shares = refresh_shares(old_shares)
        for domain, share in zip(self.domains, new_shares):
            domain.install_key_share(share, self.authority.public_key)
        report = DynamicsReport(
            event="refresh",
            domain=",".join(d.name for d in self.domains),
            keygen_messages=len(self.domains) * (len(self.domains) - 1),
        )
        self.history.append(report)
        self._audit(report, now)
        return report

    def _rekey(
        self,
        event: str,
        changed: Domain,
        new_members: List[Domain],
        now: int,
    ) -> DynamicsReport:
        assert self.authority is not None
        old_authority = self.authority
        live = old_authority.live_certificates(now)
        revocations = old_authority.revoke_all(now)
        for server in self.servers:
            for revocation in revocations:
                server.receive_revocation(revocation, now)

        for domain in self.domains:
            domain.clear_key_share()
        self.domains = new_members
        self.authority = CoalitionAttributeAuthority.establish(
            self.domains,
            name=old_authority.name,
            key_bits=self.key_bits,
            dealerless=self.dealerless,
            epoch=old_authority.epoch + 1,
        )
        # Move the directory history over so old serials stay resolvable.
        for cert in old_authority.directory.all_certificates():
            if self.authority.directory.get(cert.serial) is None:
                self.authority.directory.publish(cert)

        member_names = {d.name for d in self.domains}
        reissued = 0
        dropped = 0
        for cert in live:
            if self._subjects_still_eligible(cert, member_names):
                users = self._resolve_subjects(cert)
                self.authority.issue_threshold_certificate(
                    subjects=users,
                    threshold=cert.threshold,
                    group=cert.group,
                    now=now,
                    validity=ValidityPeriod(now, cert.validity.end),
                )
                reissued += 1
            else:
                dropped += 1

        for server in self.servers:
            self._configure_server(server)

        report = DynamicsReport(
            event=event,
            domain=changed.name,
            certificates_revoked=len(revocations),
            certificates_reissued=reissued,
            certificates_dropped=dropped,
            joint_signatures=reissued,
            keygen_messages=self.authority.keygen_stats.messages_exchanged,
            keygen_rounds=self.authority.keygen_stats.candidate_rounds,
            servers_reconfigured=len(self.servers),
        )
        self.history.append(report)
        self._audit(report, now)
        return report

    def _subjects_still_eligible(
        self, cert: ThresholdAttributeCertificate, member_names: set
    ) -> bool:
        for name, _key in cert.subjects:
            domain = self._domain_of_user(name)
            if domain is None or domain.name not in member_names:
                return False
        return True

    def _resolve_subjects(
        self, cert: ThresholdAttributeCertificate
    ) -> List[User]:
        users = []
        for name, _key in cert.subjects:
            domain = self._domain_of_user(name)
            if domain is None:
                raise KeyError(f"unknown certificate subject {name}")
            users.append(domain.users[name])
        return users

    def _domain_of_user(self, user_name: str) -> Optional[Domain]:
        for domain in self.domains:
            if user_name in domain.users:
                return domain
        return None
