"""A tamper-evident audit log of authorization decisions.

Section 2 lists "auditing applications that are used to ensure that all
domains are adhering to predefined access policies" among the jointly
owned resources.  This module provides the substrate: the coalition
server appends one signed, hash-chained entry per decision, so auditors
can verify (a) no entry was altered, (b) no entry was removed from the
middle, and (c) every entry was recorded by the server's key.

Each entry binds: sequence number, decision metadata, the proof-tree
digest (so the logged decision can be matched against a retained proof),
and the previous entry's digest — a classic hash chain.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import List, Optional

from ..crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair
from ..pki.serialization import canonical_bytes
from .protocol import AuthorizationDecision

__all__ = ["AuditEntry", "AuditLog", "AuditVerificationError"]

_GENESIS = "0" * 64


class AuditVerificationError(Exception):
    """The audit chain is broken, truncated mid-chain, or forged."""


def _proof_digest(decision: AuthorizationDecision) -> str:
    if decision.proof is None:
        return _GENESIS
    material = "\n".join(
        f"{step.rule}:{step.conclusion}" for step in decision.proof.walk()
    )
    return hashlib.sha256(material.encode()).hexdigest()


@dataclass(frozen=True)
class AuditEntry:
    """One signed, chained record of a decision."""

    sequence: int
    timestamp: int
    operation: str
    object_name: str
    group: Optional[str]
    granted: bool
    reason: str
    proof_digest: str
    previous_digest: str
    signature: int = 0
    # Decision-trace correlation (repro.obs.trace): the id of the span
    # tree recorded while deciding this request, or "" when tracing was
    # off.  Part of the signed, hash-chained payload, so the trace an
    # operator replays is bound to the entry an auditor verified.
    trace_id: str = ""
    # "" for genuine authorization decisions; the flow-event kind (e.g.
    # "flow-degraded") for entries recorded via ``append_event``.  An
    # explicit, signed marker — classification must not depend on what
    # a decision reason happens to start with.
    event_kind: str = ""

    def payload_bytes(self) -> bytes:
        return canonical_bytes(
            {
                "sequence": self.sequence,
                "timestamp": self.timestamp,
                "operation": self.operation,
                "object": self.object_name,
                "group": self.group or "",
                "granted": self.granted,
                "reason": self.reason,
                "proof_digest": self.proof_digest,
                "previous_digest": self.previous_digest,
                "trace_id": self.trace_id,
                "event_kind": self.event_kind,
            }
        )

    def digest(self) -> str:
        return hashlib.sha256(self.payload_bytes()).hexdigest()


class AuditLog:
    """An append-only, hash-chained, signed decision log."""

    def __init__(self, signer: Optional[RSAKeyPair] = None, key_bits: int = 256):
        self._signer = signer or generate_keypair(bits=key_bits)
        self._entries: List[AuditEntry] = []
        # Appends read the previous digest and extend the chain; the
        # lock makes that read-extend atomic so shard workers of the
        # sharded service can share one log.
        self._lock = threading.RLock()
        # Optional durability sink (repro.storage.wal.WriteAheadLog):
        # when bound, every signed entry is appended to the WAL inside
        # the same critical section that extends the chain, so the
        # on-disk order is exactly the chain order.
        self._wal = None

    @property
    def public_key(self) -> RSAPublicKey:
        return self._signer.public

    @property
    def keypair(self) -> RSAKeyPair:
        return self._signer

    def bind_wal(self, wal) -> None:
        """Mirror every future append into ``wal`` (a WriteAheadLog)."""
        with self._lock:
            self._wal = wal

    @classmethod
    def reseed(
        cls,
        entries: List[AuditEntry],
        signer: RSAKeyPair,
        verify: bool = True,
    ) -> "AuditLog":
        """Rebuild a log from recovered entries, resuming the chain.

        This is the healing half of ``verify_chain(expected_length=)``:
        recovery hands back the longest verifiable prefix of the
        on-disk chain, and the reseeded log continues appending from
        its tail digest as if the crash never happened.
        """
        if verify:
            cls.verify_chain(entries, signer.public)
        log = cls(signer=signer)
        log._entries = list(entries)
        return log

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[AuditEntry]:
        with self._lock:
            return list(self._entries)

    def append(
        self, decision: AuthorizationDecision, trace_id: str = ""
    ) -> AuditEntry:
        """Record a decision as the next chained entry.

        ``trace_id`` correlates the entry with a recorded decision
        trace (see :mod:`repro.obs.trace`); it is signed and chained
        with the rest of the payload.
        """
        with self._lock:
            previous = self._entries[-1].digest() if self._entries else _GENESIS
            entry = AuditEntry(
                sequence=len(self._entries),
                timestamp=decision.checked_at,
                operation=decision.operation,
                object_name=decision.object_name,
                group=decision.group,
                granted=decision.granted,
                reason=decision.reason,
                proof_digest=_proof_digest(decision),
                previous_digest=previous,
                trace_id=trace_id,
            )
            return self._append_signed(entry)

    def append_event(
        self,
        timestamp: int,
        operation: str,
        object_name: str,
        kind: str,
        detail: str = "",
        granted: bool = False,
        group: Optional[str] = None,
        trace_id: str = "",
    ) -> AuditEntry:
        """Record a flow-level event (degradation, timeout, abandonment).

        Section 2 counts auditing applications among the jointly owned
        resources; fault-tolerance events belong in the same chain as
        decisions so auditors see *why* a request was granted with only
        m of n signers, or never decided at all.  ``kind`` is one of
        ``flow-degraded`` / ``flow-timed-out`` / ``flow-abandoned`` /
        ``flow-replay-suppressed``.
        """
        with self._lock:
            previous = self._entries[-1].digest() if self._entries else _GENESIS
            entry = AuditEntry(
                sequence=len(self._entries),
                timestamp=timestamp,
                operation=operation,
                object_name=object_name,
                group=group,
                granted=granted,
                reason=f"{kind}: {detail}" if detail else kind,
                proof_digest=_GENESIS,
                previous_digest=previous,
                trace_id=trace_id,
                event_kind=kind,
            )
            return self._append_signed(entry)

    def events(self, kind: Optional[str] = None) -> List[AuditEntry]:
        """Entries recorded via :meth:`append_event` (optionally by kind)."""
        with self._lock:
            out = [e for e in self._entries if e.event_kind]
        if kind is not None:
            out = [e for e in out if e.event_kind == kind]
        return out

    def _append_signed(self, entry: AuditEntry) -> AuditEntry:
        import dataclasses

        signed = dataclasses.replace(
            entry, signature=self._signer.private.sign(entry.payload_bytes())
        )
        with self._lock:
            self._entries.append(signed)
            if self._wal is not None:
                self._wal.append_entry(signed)
        return signed

    @staticmethod
    def verify_chain(
        entries: List[AuditEntry],
        public_key: RSAPublicKey,
        expected_length: Optional[int] = None,
    ) -> None:
        """Verify signatures, sequence numbers and the hash chain.

        Raises:
            AuditVerificationError: on any alteration, reordering or
                mid-chain removal.  Truncation *from the tail* is not
                detectable from the chain alone; auditors who know the
                expected entry count from an out-of-band source (a
                replica, a counter snapshot) pass ``expected_length``
                and tail truncation raises too.
        """
        if expected_length is not None and len(entries) != expected_length:
            raise AuditVerificationError(
                f"chain has {len(entries)} entries, expected "
                f"{expected_length} (tail truncated or padded?)"
            )
        previous = _GENESIS
        for index, entry in enumerate(entries):
            if entry.sequence != index:
                raise AuditVerificationError(
                    f"entry {index} carries sequence {entry.sequence}"
                )
            if entry.previous_digest != previous:
                raise AuditVerificationError(
                    f"hash chain broken at entry {index}"
                )
            if not public_key.verify(entry.payload_bytes(), entry.signature):
                raise AuditVerificationError(
                    f"bad signature on entry {index}"
                )
            previous = entry.digest()

    def verify(self, expected_length: Optional[int] = None) -> None:
        """Self-check the whole log."""
        self.verify_chain(self.entries(), self.public_key, expected_length)
