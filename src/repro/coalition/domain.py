"""Domains and their users.

Each autonomous domain runs its own identity CA (Requirement I) and
registers its own users.  After coalition formation a domain also holds
one additive share of the coalition AA's private key, which is how it
participates in (and can refuse) joint certificate issuance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..crypto.boneh_franklin import PrivateKeyShare, SharedRSAPublicKey
from ..crypto.joint_signature import CoSigner
from ..crypto.rsa import RSAKeyPair, generate_keypair
from ..pki.authorities import CertificateAuthority
from ..pki.certificates import IdentityCertificate, ValidityPeriod

__all__ = ["User", "Domain"]

DEFAULT_VALIDITY_TICKS = 1_000


@dataclass
class User:
    """A coalition user: a keypair plus the domain CA's identity cert."""

    name: str
    domain_name: str
    keypair: RSAKeyPair
    identity_certificate: IdentityCertificate

    @property
    def key_id(self) -> str:
        return self.keypair.public.fingerprint()

    def sign(self, payload: bytes) -> int:
        return self.keypair.private.sign(payload)


class Domain:
    """An autonomous domain: CA, users, and (after formation) a key share."""

    def __init__(self, name: str, key_bits: int = 512, clock_skew: int = 0):
        self.name = name
        self.key_bits = key_bits
        self.clock_skew = clock_skew
        self.ca = CertificateAuthority(f"CA_{name}", key_bits=key_bits)
        self.users: Dict[str, User] = {}
        # Coalition state, populated by Coalition.form():
        self.key_share: Optional[PrivateKeyShare] = None
        self.shared_public_key: Optional[SharedRSAPublicKey] = None
        # When False the domain refuses to co-sign joint requests,
        # modelling dissent (Requirement III's consensus is then unmet).
        self.cooperative = True

    def register_user(
        self,
        user_name: str,
        now: int,
        validity_ticks: int = DEFAULT_VALIDITY_TICKS,
    ) -> User:
        """Create a user with a fresh keypair and identity certificate."""
        if user_name in self.users:
            raise ValueError(f"user {user_name} already registered in {self.name}")
        keypair = generate_keypair(bits=self.key_bits)
        cert = self.ca.issue_identity(
            subject=user_name,
            subject_key=keypair.public,
            now=now,
            validity=ValidityPeriod(now, now + validity_ticks),
        )
        user = User(
            name=user_name,
            domain_name=self.name,
            keypair=keypair,
            identity_certificate=cert,
        )
        self.users[user_name] = user
        return user

    def reissue_identity(
        self, user: User, now: int, validity_ticks: int = DEFAULT_VALIDITY_TICKS
    ) -> IdentityCertificate:
        """Issue a fresh identity certificate for an existing user."""
        cert = self.ca.issue_identity(
            subject=user.name,
            subject_key=user.keypair.public,
            now=now,
            validity=ValidityPeriod(now, now + validity_ticks),
        )
        user.identity_certificate = cert
        return cert

    def install_key_share(
        self, share: PrivateKeyShare, public_key: SharedRSAPublicKey
    ) -> None:
        """Store this domain's share of the coalition AA's private key."""
        self.key_share = share
        self.shared_public_key = public_key

    def clear_key_share(self) -> None:
        """Drop coalition key material (on leave or re-key)."""
        self.key_share = None
        self.shared_public_key = None

    def co_signer(self) -> CoSigner:
        """This domain's co-signer endpoint for joint signatures.

        Raises:
            RuntimeError: the domain holds no share or is refusing to
                cooperate.
        """
        if self.key_share is None or self.shared_public_key is None:
            raise RuntimeError(f"domain {self.name} holds no coalition key share")
        if not self.cooperative:
            raise RuntimeError(f"domain {self.name} refuses to co-sign")
        return CoSigner(self.key_share, self.shared_public_key)

    def __repr__(self) -> str:
        return f"Domain({self.name!r}, users={len(self.users)})"
