"""An m-of-n threshold coalition attribute authority (Section 3.3).

The n-of-n :class:`~repro.coalition.authority.CoalitionAttributeAuthority`
enforces unanimous consent but requires every domain on-line for each
issuance.  Section 3.3 offers the trade: share the AA's private key in
an m-of-n threshold manner so any ``m`` domains can issue — "a
corresponding modification of the requirements ... as the consent of
all resource owner-domains is no longer necessary."

This authority signs with Shoup threshold RSA
(:mod:`repro.crypto.threshold`): each domain holds one key share; an
issuance succeeds when at least ``m`` cooperative domains contribute
signature shares.  Everything downstream (certificate format, server
trust, the logic's ``K_AA => CP_{m,n}`` belief) is unchanged — the
verifier-side statement 1 simply carries ``m < n``.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, List, Sequence

from ..crypto.threshold import (
    ThresholdCombineError,
    ThresholdKey,
    ThresholdKeyShare,
    ThresholdPublicKey,
    generate_threshold_key,
    robust_combine,
    threshold_sign_share,
)
from ..pki.authorities import RevocationAuthority
from ..pki.certificates import (
    RevocationCertificate,
    ThresholdAttributeCertificate,
    ValidityPeriod,
)
from ..pki.store import CertificateStore
from .authority import ConsensusError
from .domain import Domain, User

__all__ = ["ThresholdCoalitionAuthority"]


class ThresholdCoalitionAuthority:
    """A coalition AA whose key is shared m-of-n across domains."""

    def __init__(
        self,
        name: str,
        domains: Sequence[Domain],
        threshold: int,
        key: ThresholdKey,
    ):
        self.name = name
        self.domains: List[Domain] = list(domains)
        self.threshold = threshold
        self._key = key
        self._shares_by_domain: Dict[str, ThresholdKeyShare] = {
            domain.name: share
            for domain, share in zip(self.domains, key.shares)
        }
        self.revocation_authority = RevocationAuthority(f"RA_{name}")
        self.directory = CertificateStore()
        self._serials = itertools.count(1)
        self.issuance_attempts = 0
        self.issuance_failures = 0
        # Byzantine-fault modelling: domain name -> share tamper function;
        # domains identified as returning bad shares are recorded here.
        self.share_tamperers: Dict[str, object] = {}
        self.byzantine_observations: List[str] = []

    # ------------------------------------------------------------ setup

    @classmethod
    def establish(
        cls,
        domains: Sequence[Domain],
        threshold: int,
        name: str = "AA",
        key_bits: int = 128,
    ) -> "ThresholdCoalitionAuthority":
        """Deal an m-of-n Shoup key across ``domains``.

        Note: Shoup sharing needs a dealer (safe-prime structure); the
        paper's dealerless requirement applies to the n-of-n consensus
        design — the availability-oriented threshold variant documented
        here accepts dealer-based setup (see DESIGN.md substitutions).
        """
        n = len(domains)
        if not 1 <= threshold <= n:
            raise ValueError("threshold must satisfy 1 <= m <= n")
        key = generate_threshold_key(n, threshold, bits=key_bits)
        return cls(name=name, domains=domains, threshold=threshold, key=key)

    @property
    def public_key(self) -> ThresholdPublicKey:
        return self._key.public

    @property
    def key_id(self) -> str:
        return self.public_key.fingerprint()

    def member_names(self) -> List[str]:
        return [d.name for d in self.domains]

    # --------------------------------------------------------- issuance

    def issue_threshold_certificate(
        self,
        subjects: Sequence[User],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
    ) -> ThresholdAttributeCertificate:
        """Issue with the consent of any ``m`` cooperative domains.

        Raises:
            ConsensusError: fewer than ``m`` domains are cooperative.
        """
        self.issuance_attempts += 1
        cert = ThresholdAttributeCertificate(
            serial=f"{self.name}/thr-tac-{next(self._serials):06d}",
            subjects=tuple(
                (user.name, user.keypair.public.fingerprint())
                for user in subjects
            ),
            threshold=threshold,
            group=group,
            issuer=self.name,
            issuer_key_id=self.key_id,
            timestamp=now,
            validity=validity,
        )
        payload = cert.payload_bytes()
        # Gather a share from EVERY cooperative domain, then combine
        # robustly: a Byzantine domain returning a garbled share cannot
        # block issuance while >= m honest shares are present.
        sig_shares = []
        by_index = {}
        for domain in self.domains:
            if not domain.cooperative:
                continue
            share = self._shares_by_domain[domain.name]
            sig_share = self._collect_share(domain, payload, share)
            sig_shares.append(sig_share)
            by_index[sig_share.index] = domain.name
        if len(sig_shares) < self.threshold:
            self.issuance_failures += 1
            raise ConsensusError(
                f"only {len(sig_shares)} of the required {self.threshold} "
                "domains are available to co-sign"
            )
        try:
            signature, bad_indices = robust_combine(
                payload, sig_shares, self.public_key
            )
        except ThresholdCombineError as exc:
            self.issuance_failures += 1
            raise ConsensusError(f"threshold combination failed: {exc}") from exc
        for index in bad_indices:
            self.byzantine_observations.append(by_index[index])
        signed = replace(cert, signature=signature)
        self.directory.publish(signed)
        return signed

    def _collect_share(self, domain: Domain, payload: bytes, share):
        """One domain's signature share (the per-domain RPC, in effect).

        Subclasses / tests override via ``share_tamperers`` to model a
        Byzantine domain.
        """
        sig_share = threshold_sign_share(payload, share, self.public_key)
        tamper = self.share_tamperers.get(domain.name)
        if tamper is not None:
            sig_share = tamper(sig_share, self.public_key)
        return sig_share

    # -------------------------------------------------------- revocation

    def revoke_certificate(
        self, cert: ThresholdAttributeCertificate, now: int
    ) -> RevocationCertificate:
        revocation = self.revocation_authority.revoke(cert, now)
        self.directory.publish(revocation)
        return revocation
