"""ACLs and policy objects for coalition resources.

Section 4.1 / Appendix E: an object's ACL is "a simple disjunction of
expressions" ``ACL_O = {E_0, ..., E_n}`` with each ``E_i = (G, access
permissions)`` for a group ``G``.  Setting and updating the ACL is
itself an operation governed by a (meta) policy object, so ACL changes
go through the same threshold-certificate machinery as data access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List

__all__ = ["ACLEntry", "ACL", "PolicyObject", "CoalitionObject"]


@dataclass(frozen=True)
class ACLEntry:
    """One disjunct ``(group, permissions)`` of an ACL."""

    group: str
    permissions: FrozenSet[str]

    @staticmethod
    def of(group: str, permissions: Iterable[str]) -> "ACLEntry":
        return ACLEntry(group=group, permissions=frozenset(permissions))

    def allows(self, group: str, operation: str) -> bool:
        return self.group == group and operation in self.permissions


@dataclass
class ACL:
    """A disjunction of ACL entries."""

    entries: List[ACLEntry] = field(default_factory=list)

    def allows(self, group: str, operation: str, now: int = 0) -> bool:
        """True when some entry grants ``operation`` to ``group``.

        ``now`` is accepted (and ignored) so time-aware ACLs
        (:class:`repro.coalition.policies.ExtendedACL`) are drop-in
        replacements at the protocol's Step 4.
        """
        return any(entry.allows(group, operation) for entry in self.entries)

    def groups_allowing(self, operation: str) -> List[str]:
        return [e.group for e in self.entries if operation in e.permissions]

    def add(self, entry: ACLEntry) -> None:
        self.entries.append(entry)

    def remove_group(self, group: str) -> int:
        """Drop every entry for ``group``; returns how many were removed."""
        before = len(self.entries)
        self.entries = [e for e in self.entries if e.group != group]
        return before - len(self.entries)


@dataclass
class PolicyObject:
    """The policy object governing an object's ACL.

    ``admin_group`` is the group whose (threshold-certified) members may
    set and update the ACL — "setting and updating policy objects is
    handled in a manner similar to that of accessing objects".
    """

    acl: ACL
    admin_group: str
    version: int = 0

    def update(self, new_entries: Iterable[ACLEntry]) -> None:
        self.acl.entries = list(new_entries)
        self.version += 1


@dataclass
class CoalitionObject:
    """A jointly owned resource managed by a coalition server."""

    name: str
    content: bytes
    policy: PolicyObject
    write_count: int = 0
    read_count: int = 0

    def write(self, content: bytes) -> None:
        self.content = content
        self.write_count += 1

    def read(self) -> bytes:
        self.read_count += 1
        return self.content
