"""Application-oriented policy extensions (Section 4.1).

The paper restricts its discussion to plain group ACLs but notes that
"application-oriented policies such as privilege inheritance,
time-constrained access, etc. ... will not pose any additional
fundamental design problems."  This module makes good on that claim:

* :class:`TimeConstrainedEntry` — an ACL entry valid only inside given
  tick windows (e.g. business hours / mission phases);
* :class:`GroupHierarchy` — privilege inheritance: membership of a
  senior group implies the privileges of its juniors;
* :class:`ExtendedACL` — an ACL over both, drop-in compatible with the
  authorization protocol (it exposes the same ``allows`` interface,
  evaluated at decision time).

These compose with the threshold-certificate machinery untouched: the
logic still concludes ``G says "op" O``; only Step 4's ACL predicate
becomes richer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .acl import ACLEntry

__all__ = [
    "TimeWindow",
    "TimeConstrainedEntry",
    "GroupHierarchy",
    "ExtendedACL",
]


@dataclass(frozen=True)
class TimeWindow:
    """A recurring window of ticks: [start, end) modulo ``period``.

    With ``period == 0`` the window is absolute: [start, end) on the
    global timeline.
    """

    start: int
    end: int
    period: int = 0

    def __post_init__(self) -> None:
        if self.period < 0:
            raise ValueError("period must be nonnegative")
        if self.period == 0 and self.start >= self.end:
            raise ValueError("absolute window must be nonempty")
        if self.period > 0 and not (0 <= self.start < self.period):
            raise ValueError("recurring window start must lie in the period")

    def contains(self, t: int) -> bool:
        if self.period == 0:
            return self.start <= t < self.end
        phase = t % self.period
        if self.start <= self.end:
            return self.start <= phase < self.end
        # Window wraps around the period boundary.
        return phase >= self.start or phase < self.end


@dataclass(frozen=True)
class TimeConstrainedEntry:
    """An ACL entry that only grants inside its time windows."""

    group: str
    permissions: FrozenSet[str]
    windows: Tuple[TimeWindow, ...]

    @staticmethod
    def of(
        group: str, permissions: Iterable[str], windows: Iterable[TimeWindow]
    ) -> "TimeConstrainedEntry":
        return TimeConstrainedEntry(
            group=group,
            permissions=frozenset(permissions),
            windows=tuple(windows),
        )

    def allows(self, group: str, operation: str, now: int) -> bool:
        if self.group != group or operation not in self.permissions:
            return False
        return any(w.contains(now) for w in self.windows)


class GroupHierarchy:
    """Privilege inheritance: ``senior`` inherits from ``junior``.

    ``add(senior, junior)`` states that members of *senior* may exercise
    any privilege granted to *junior* (transitively).  Cycles are
    rejected — inheritance must be a DAG.
    """

    def __init__(self) -> None:
        self._parents: Dict[str, Set[str]] = {}

    def add(self, senior: str, junior: str) -> None:
        if senior == junior:
            raise ValueError("a group cannot inherit from itself")
        if senior in self.ancestors_of(junior):
            raise ValueError(
                f"adding {senior} -> {junior} would create an inheritance cycle"
            )
        self._parents.setdefault(senior, set()).add(junior)

    def ancestors_of(self, group: str) -> Set[str]:
        """All groups ``group`` transitively inherits from (descendants
        in privilege terms): the juniors whose privileges it may use."""
        seen: Set[str] = set()
        frontier = [group]
        while frontier:
            current = frontier.pop()
            for junior in self._parents.get(current, ()):
                if junior not in seen:
                    seen.add(junior)
                    frontier.append(junior)
        return seen

    def effective_groups(self, group: str) -> Set[str]:
        """The group itself plus everything it inherits."""
        return {group} | self.ancestors_of(group)


class ExtendedACL:
    """An ACL with plain entries, time-constrained entries, and
    inheritance.  Drop-in for the protocol: exposes ``allows``; the
    decision time defaults to 0 for plain two-argument calls."""

    def __init__(
        self,
        entries: Optional[Iterable[ACLEntry]] = None,
        timed_entries: Optional[Iterable[TimeConstrainedEntry]] = None,
        hierarchy: Optional[GroupHierarchy] = None,
    ):
        self.entries: List[ACLEntry] = list(entries or ())
        self.timed_entries: List[TimeConstrainedEntry] = list(timed_entries or ())
        self.hierarchy = hierarchy or GroupHierarchy()

    def allows(self, group: str, operation: str, now: int = 0) -> bool:
        """True when ``group`` (or anything it inherits) grants the op."""
        for effective in self.hierarchy.effective_groups(group):
            for entry in self.entries:
                if entry.allows(effective, operation):
                    return True
            for timed in self.timed_entries:
                if timed.allows(effective, operation, now):
                    return True
        return False

    def add(self, entry: ACLEntry) -> None:
        self.entries.append(entry)

    def add_timed(self, entry: TimeConstrainedEntry) -> None:
        self.timed_entries.append(entry)
