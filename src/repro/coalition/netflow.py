"""Driving the authorization protocol over the simulated network.

The rest of :mod:`repro.coalition` calls components directly; this
module runs the *message flow* of Figure 2 over
:class:`repro.sim.Network`, with the environment principal free to
delay, drop or replay messages.  It demonstrates (and lets tests and
benches measure) that:

* the flow completes in the expected number of network ticks;
* replayed joint requests are rejected by the server's nonce cache;
* a dropped co-signer response stalls the request (the requestor times
  out rather than sending an under-signed bundle).

Message kinds on the wire:

* ``sign-request`` / ``sign-response`` — the requestor collecting a
  co-signer's :class:`~repro.coalition.requests.SignedRequestPart`;
* ``access-request`` — the assembled joint request to the server;
* ``access-response`` — the server's decision (plus ciphertext for
  reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..sim.clock import LocalClock
from ..sim.network import Envelope, Network
from .domain import User
from .requests import (
    JointAccessRequest,
    SignedRequestPart,
    make_request_part,
)
from .server import AccessResult, CoalitionServer

__all__ = ["NetworkFlowResult", "NetworkedAccessFlow"]


@dataclass
class _WireMessage:
    kind: str
    payload: object
    request_id: str


@dataclass
class NetworkFlowResult:
    """Outcome of one networked access flow."""

    completed: bool
    result: Optional[AccessResult]
    ticks_elapsed: int
    messages_sent: int
    replays_seen: int = 0


class NetworkedAccessFlow:
    """One requestor-driven joint access over a simulated network.

    The requestor node sends sign-requests to each co-signer node,
    collects responses, assembles the joint request, and sends it to
    the server node; the server node runs the authorization protocol
    and replies.  All timing comes from the shared global clock.
    """

    def __init__(
        self,
        network: Network,
        server: CoalitionServer,
        server_clock_skew: int = 0,
    ):
        self.network = network
        self.server = server
        self.server_clock = LocalClock(network.clock, skew=server_clock_skew)
        self._users: Dict[str, User] = {}
        self._pending: Dict[str, dict] = {}
        self.results: Dict[str, NetworkFlowResult] = {}
        self._replays = 0

    def register_user(self, user: User) -> None:
        self._users[user.name] = user

    # ------------------------------------------------------------- flow

    def start(
        self,
        requestor: User,
        co_signers: Sequence[User],
        operation: str,
        object_name: str,
        attribute_certificate,
        write_content: Optional[bytes] = None,
        tag: str = "",
    ) -> str:
        """Kick off a flow; returns its request id.

        ``tag`` disambiguates otherwise-identical requests started at
        the same tick (it becomes part of the request nonce).
        """
        self.register_user(requestor)
        for user in co_signers:
            self.register_user(user)
        now = self.network.clock.now
        request_id = f"{requestor.name}:{object_name}:{operation}:{now}:{tag}"
        nonce = request_id
        part = make_request_part(requestor, operation, object_name, now, nonce)
        self._pending[request_id] = {
            "requestor": requestor,
            "co_signers": list(co_signers),
            "operation": operation,
            "object_name": object_name,
            "certificate": attribute_certificate,
            "nonce": nonce,
            "parts": [part],
            "write_content": write_content,
            "started_at": now,
            "sent_to_server": False,
        }
        if co_signers:
            for signer in co_signers:
                self.network.send(
                    requestor.name,
                    signer.name,
                    _WireMessage("sign-request", (operation, object_name, nonce), request_id),
                )
        else:
            self._send_to_server(request_id)
        return request_id

    def _send_to_server(self, request_id: str) -> None:
        state = self._pending[request_id]
        if state["sent_to_server"]:
            return
        state["sent_to_server"] = True
        participants = [state["requestor"], *state["co_signers"]]
        request = JointAccessRequest(
            operation=state["operation"],
            object_name=state["object_name"],
            requestor=state["requestor"].name,
            identity_certificates=[
                u.identity_certificate for u in participants
            ],
            attribute_certificate=state["certificate"],
            parts=list(state["parts"]),
        )
        self.network.send(
            state["requestor"].name,
            self.server.name,
            _WireMessage("access-request", request, request_id),
        )

    # --------------------------------------------------------- dispatch

    def dispatch(self, envelope: Envelope) -> None:
        """Route one delivered envelope to its recipient's handler."""
        message = envelope.payload
        if not isinstance(message, _WireMessage):
            return
        if envelope.replayed:
            self._replays += 1
        if message.kind == "sign-request":
            self._handle_sign_request(envelope, message)
        elif message.kind == "sign-response":
            self._handle_sign_response(envelope, message)
        elif message.kind == "access-request":
            self._handle_access_request(envelope, message)
        elif message.kind == "access-response":
            pass  # terminal: result already recorded server-side

    def _handle_sign_request(self, envelope: Envelope, message: _WireMessage) -> None:
        signer = self._users.get(envelope.recipient)
        if signer is None:
            return
        operation, object_name, nonce = message.payload
        part = make_request_part(
            signer, operation, object_name, self.network.clock.now, nonce
        )
        self.network.send(
            signer.name,
            envelope.sender,
            _WireMessage("sign-response", part, message.request_id),
        )

    def _handle_sign_response(self, envelope: Envelope, message: _WireMessage) -> None:
        state = self._pending.get(message.request_id)
        if state is None:
            return
        part: SignedRequestPart = message.payload
        known = {p.user for p in state["parts"]}
        if part.user in known:
            return  # duplicate (e.g. replayed response)
        state["parts"].append(part)
        expected = 1 + len(state["co_signers"])
        if len(state["parts"]) == expected:
            self._send_to_server(message.request_id)

    def _handle_access_request(self, envelope: Envelope, message: _WireMessage) -> None:
        state = self._pending.get(message.request_id)
        request: JointAccessRequest = message.payload
        now_local = self.server_clock.now
        responder_key = None
        if request.operation == "read" and request.requestor in self._users:
            responder_key = self._users[request.requestor].keypair.public
        result = self.server.handle_request(
            request,
            now=now_local,
            write_content=state["write_content"] if state else None,
            responder_key=responder_key,
        )
        self.network.send(
            self.server.name,
            request.requestor,
            _WireMessage("access-response", result.decision.granted, message.request_id),
        )
        if state is not None:
            self.results[message.request_id] = NetworkFlowResult(
                completed=True,
                result=result,
                ticks_elapsed=self.network.clock.now - state["started_at"],
                messages_sent=self.network.sent_count,
                replays_seen=self._replays,
            )

    # ------------------------------------------------------------ driver

    def run(self, max_ticks: int = 1_000) -> int:
        """Advance the network until quiet; returns ticks elapsed."""
        return self.network.run_until_quiet(self.dispatch, max_ticks=max_ticks)

    def result_of(self, request_id: str) -> Optional[NetworkFlowResult]:
        return self.results.get(request_id)
