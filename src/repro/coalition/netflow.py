"""Driving the authorization protocol over the simulated network.

The rest of :mod:`repro.coalition` calls components directly; this
module runs the *message flow* of Figure 2 over
:class:`repro.sim.Network`, with the environment principal free to
delay, drop or replay messages.  Each flow is a small state machine
(``collecting`` -> ``submitted`` -> ``done``) driven by deliveries and
by timers on the network's :class:`~repro.sim.TickScheduler`:

* sign-requests that go unanswered are retried with exponential
  backoff, up to ``max_retries`` times;
* when the attribute certificate is an m-of-n
  :class:`~repro.pki.certificates.ThresholdAttributeCertificate` and at
  least ``m`` participants have responded by a timeout, the flow
  **degrades gracefully**: it assembles and submits the m-of-n request
  instead of waiting for stragglers (the paper's CP_{m,n} principals
  exist precisely so unreachable members cannot block the group);
* a flow that can never reach ``m`` parts, or never hears back from the
  server, terminates with ``completed=False`` (timed-out / abandoned)
  rather than stalling silently;
* replayed or retransmitted ``access-request`` envelopes never
  overwrite an already-recorded terminal result — the first decision
  stands and the replay is counted.

Message kinds on the wire:

* ``sign-request`` / ``sign-response`` — the requestor collecting a
  co-signer's :class:`~repro.coalition.requests.SignedRequestPart`;
* ``access-request`` — the assembled joint request to the server;
* ``access-response`` — the server's decision (plus ciphertext for
  reads).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..pki.certificates import ThresholdAttributeCertificate
from ..sim.clock import LocalClock
from ..sim.network import Envelope, Network
from .audit import AuditLog
from .domain import User
from .requests import (
    JointAccessRequest,
    SignedRequestPart,
    make_request_part,
)
from .server import AccessResult, CoalitionServer

__all__ = ["NetworkFlowResult", "NetworkedAccessFlow"]


@dataclass
class _WireMessage:
    kind: str
    payload: object
    request_id: str


@dataclass
class NetworkFlowResult:
    """Outcome of one networked access flow.

    ``completed`` is True when the server decided the request (granted
    or denied); a timed-out or abandoned flow records ``completed=False``
    with the failure in ``reason`` and ``result=None``.  ``degraded``
    marks an m-of-n submission assembled after a sign-collection
    timeout; ``retries`` counts this flow's retransmissions (sign and
    server phases combined).
    """

    completed: bool
    result: Optional[AccessResult]
    ticks_elapsed: int
    messages_sent: int
    replays_seen: int = 0
    retries: int = 0
    degraded: bool = False
    reason: str = ""


class NetworkedAccessFlow:
    """Requestor-driven joint accesses over a simulated network.

    The requestor node sends sign-requests to each co-signer node,
    collects responses, assembles the joint request, and sends it to
    the server node; the server node runs the authorization protocol
    and replies.  All timing comes from the shared global clock; all
    timeouts from the network's tick scheduler.

    Fault-tolerance knobs:

    * ``sign_timeout`` — ticks to wait for co-signer responses before
      degrading or retrying;
    * ``response_timeout`` — ticks to wait for the server's decision
      before retransmitting the access-request;
    * ``max_retries`` — retransmission attempts per phase;
    * ``backoff_factor`` — each successive wait is the previous one
      multiplied by this factor (exponential backoff).
    """

    def __init__(
        self,
        network: Network,
        server: CoalitionServer,
        server_clock_skew: int = 0,
        sign_timeout: int = 10,
        response_timeout: int = 10,
        max_retries: int = 3,
        backoff_factor: int = 2,
        audit_log: Optional[AuditLog] = None,
    ):
        if sign_timeout < 1 or response_timeout < 1:
            raise ValueError("timeouts must be at least one tick")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        self.network = network
        self.server = server
        self.server_clock = LocalClock(network.clock, skew=server_clock_skew)
        self.sign_timeout = sign_timeout
        self.response_timeout = response_timeout
        self.max_retries = max_retries
        self.backoff_factor = backoff_factor
        self.audit_log = audit_log
        self._users: Dict[str, User] = {}
        self._pending: Dict[str, dict] = {}
        self.results: Dict[str, NetworkFlowResult] = {}
        self._replays = 0
        # Aggregate fault-tolerance counters across every flow started
        # on this instance; mirrored into server.flow_events as they
        # happen and exposed via stats().
        self.flows_started = 0
        self.retries = 0
        self.timeouts_fired = 0
        self.degradations = 0
        self.flows_timed_out = 0
        self.flows_abandoned = 0
        self.replays_suppressed = 0

    def register_user(self, user: User) -> None:
        self._users[user.name] = user

    # ------------------------------------------------------------- flow

    def start(
        self,
        requestor: User,
        co_signers: Sequence[User],
        operation: str,
        object_name: str,
        attribute_certificate,
        write_content: Optional[bytes] = None,
        tag: str = "",
    ) -> str:
        """Kick off a flow; returns its request id.

        ``tag`` disambiguates otherwise-identical requests started at
        the same tick (it becomes part of the request nonce).
        """
        self.register_user(requestor)
        for user in co_signers:
            self.register_user(user)
        now = self.network.clock.now
        request_id = f"{requestor.name}:{object_name}:{operation}:{now}:{tag}"
        nonce = request_id
        part = make_request_part(requestor, operation, object_name, now, nonce)
        self._pending[request_id] = {
            "requestor": requestor,
            "co_signers": list(co_signers),
            "operation": operation,
            "object_name": object_name,
            "certificate": attribute_certificate,
            "nonce": nonce,
            "parts": [part],
            "write_content": write_content,
            "started_at": now,
            "phase": "collecting",
            "degraded": False,
            "retries": 0,
            "sign_attempts": 0,
            "server_attempts": 0,
            "request": None,
            "timer": None,
        }
        self.flows_started += 1
        if co_signers:
            self._send_sign_requests(request_id, co_signers)
            self._arm_sign_timer(request_id, self.sign_timeout)
        else:
            self._send_to_server(request_id)
        return request_id

    # ------------------------------------------------------ sign phase

    def _send_sign_requests(
        self, request_id: str, signers: Sequence[User]
    ) -> None:
        state = self._pending[request_id]
        for signer in signers:
            self.network.send(
                state["requestor"].name,
                signer.name,
                _WireMessage(
                    "sign-request",
                    (state["operation"], state["object_name"], state["nonce"]),
                    request_id,
                ),
            )

    def _arm_sign_timer(self, request_id: str, wait: int) -> None:
        state = self._pending[request_id]
        state["timer"] = self.network.scheduler.call_after(
            wait, lambda: self._on_sign_timeout(request_id)
        )

    def _missing_signers(self, state: dict) -> list:
        have = {p.user for p in state["parts"]}
        return [u for u in state["co_signers"] if u.name not in have]

    def _on_sign_timeout(self, request_id: str) -> None:
        state = self._pending.get(request_id)
        if state is None or state["phase"] != "collecting":
            return
        self.timeouts_fired += 1
        certificate = state["certificate"]
        subject_parts = self._subject_parts(state)
        threshold = getattr(certificate, "threshold", None)
        if (
            isinstance(certificate, ThresholdAttributeCertificate)
            and len(subject_parts) >= certificate.threshold
        ):
            # Graceful degradation: enough of CP_{m,n} answered; the
            # stragglers cannot block the group (Section 3.3).
            state["degraded"] = True
            self.degradations += 1
            self.server.record_flow_event("flows_degraded")
            self._audit_event(
                state,
                "flow-degraded",
                f"submitting {len(subject_parts)} of "
                f"{1 + len(state['co_signers'])} parts "
                f"(threshold {certificate.threshold})",
            )
            self._send_to_server(request_id)
            return
        if state["sign_attempts"] < self.max_retries:
            state["sign_attempts"] += 1
            state["retries"] += 1
            self.retries += 1
            self.server.record_flow_event("flow_retries")
            self._send_sign_requests(request_id, self._missing_signers(state))
            wait = self.sign_timeout * (
                self.backoff_factor ** state["sign_attempts"]
            )
            self._arm_sign_timer(request_id, wait)
            return
        have, need = len(state["parts"]), 1 + len(state["co_signers"])
        detail = f"collected {have} of {need} request parts"
        if threshold is not None:
            detail += f" (threshold {threshold})"
        self.flows_timed_out += 1
        self.server.record_flow_event("flows_timed_out")
        self._audit_event(state, "flow-timed-out", detail)
        self._record_failure(request_id, f"timed-out: {detail}")

    def _subject_parts(self, state: dict) -> list:
        """Parts signed by actual subjects of the threshold certificate.

        Degradation must only count valid co-signatures: a part from a
        user the certificate does not name can never contribute to the
        m-of-n quorum (the server would reject it in Step 0).
        """
        certificate = state["certificate"]
        if not isinstance(certificate, ThresholdAttributeCertificate):
            return list(state["parts"])
        subjects = {name for name, _key in certificate.subjects}
        return [p for p in state["parts"] if p.user in subjects]

    # ---------------------------------------------------- server phase

    def _send_to_server(self, request_id: str) -> None:
        state = self._pending[request_id]
        if state["phase"] != "collecting":
            return
        state["phase"] = "submitted"
        self._cancel_timer(state)
        if state["degraded"]:
            parts = self._subject_parts(state)
        else:
            parts = list(state["parts"])
        # Re-attest the requestor's own part at submission time: after a
        # retried collection phase the part signed at start may fall out
        # of the server's freshness window, and the requestor is by
        # definition present to re-sign.
        refreshed = make_request_part(
            state["requestor"],
            state["operation"],
            state["object_name"],
            self.network.clock.now,
            state["nonce"],
        )
        parts = [
            refreshed if p.user == state["requestor"].name else p
            for p in parts
        ]
        responded = {p.user for p in parts}
        participants = [
            u
            for u in [state["requestor"], *state["co_signers"]]
            if u.name in responded
        ]
        request = JointAccessRequest(
            operation=state["operation"],
            object_name=state["object_name"],
            requestor=state["requestor"].name,
            identity_certificates=[
                u.identity_certificate for u in participants
            ],
            attribute_certificate=state["certificate"],
            parts=parts,
            degraded=state["degraded"],
        )
        state["request"] = request
        self._send_access_request(request_id)
        self._arm_response_timer(request_id, self.response_timeout)

    def _send_access_request(self, request_id: str) -> None:
        state = self._pending[request_id]
        self.network.send(
            state["requestor"].name,
            self.server.name,
            _WireMessage("access-request", state["request"], request_id),
        )

    def _arm_response_timer(self, request_id: str, wait: int) -> None:
        state = self._pending[request_id]
        state["timer"] = self.network.scheduler.call_after(
            wait, lambda: self._on_response_timeout(request_id)
        )

    def _on_response_timeout(self, request_id: str) -> None:
        state = self._pending.get(request_id)
        if state is None or state["phase"] != "submitted":
            return
        if request_id in self.results:
            # The server decided; only the response leg is in flight (or
            # lost).  The flow is terminal either way.
            state["phase"] = "done"
            return
        self.timeouts_fired += 1
        if state["server_attempts"] < self.max_retries:
            state["server_attempts"] += 1
            state["retries"] += 1
            self.retries += 1
            self.server.record_flow_event("flow_retries")
            self._send_access_request(request_id)
            wait = self.response_timeout * (
                self.backoff_factor ** state["server_attempts"]
            )
            self._arm_response_timer(request_id, wait)
            return
        detail = (
            f"no server response after {state['server_attempts'] + 1} "
            "access-request transmissions"
        )
        self.flows_abandoned += 1
        self.server.record_flow_event("flows_abandoned")
        self._audit_event(state, "flow-abandoned", detail)
        self._record_failure(request_id, f"abandoned: {detail}")

    # --------------------------------------------------------- dispatch

    def dispatch(self, envelope: Envelope) -> None:
        """Route one delivered envelope to its recipient's handler."""
        message = envelope.payload
        if not isinstance(message, _WireMessage):
            return
        if envelope.replayed:
            self._replays += 1
        if message.kind == "sign-request":
            self._handle_sign_request(envelope, message)
        elif message.kind == "sign-response":
            self._handle_sign_response(envelope, message)
        elif message.kind == "access-request":
            self._handle_access_request(envelope, message)
        elif message.kind == "access-response":
            pass  # terminal: result already recorded at decision time

    def _handle_sign_request(self, envelope: Envelope, message: _WireMessage) -> None:
        signer = self._users.get(envelope.recipient)
        if signer is None:
            return
        operation, object_name, nonce = message.payload
        part = make_request_part(
            signer, operation, object_name, self.network.clock.now, nonce
        )
        self.network.send(
            signer.name,
            envelope.sender,
            _WireMessage("sign-response", part, message.request_id),
        )

    def _handle_sign_response(self, envelope: Envelope, message: _WireMessage) -> None:
        state = self._pending.get(message.request_id)
        if state is None or state["phase"] != "collecting":
            return  # late straggler after degradation/termination
        part: SignedRequestPart = message.payload
        known = {p.user for p in state["parts"]}
        if part.user in known:
            return  # duplicate (e.g. replayed or re-requested response)
        state["parts"].append(part)
        expected = 1 + len(state["co_signers"])
        if len(state["parts"]) == expected:
            self._send_to_server(message.request_id)

    def _handle_access_request(self, envelope: Envelope, message: _WireMessage) -> None:
        state = self._pending.get(message.request_id)
        request: JointAccessRequest = message.payload
        now_local = self.server_clock.now
        responder_key = None
        if request.operation == "read" and request.requestor in self._users:
            responder_key = self._users[request.requestor].keypair.public
        result = self.server.handle_request(
            request,
            now=now_local,
            write_content=state["write_content"] if state else None,
            responder_key=responder_key,
        )
        self.network.send(
            self.server.name,
            request.requestor,
            _WireMessage("access-response", result.decision.granted, message.request_id),
        )
        if state is None:
            return
        if message.request_id in self.results:
            # Replayed (or retransmitted) request: the first terminal
            # result stands — the replay's nonce-denial must not make an
            # already-granted flow look denied.
            self.replays_suppressed += 1
            self.server.record_flow_event("flow_replays_suppressed")
            self._audit_event(
                state, "flow-replay-suppressed", "duplicate access-request"
            )
            return
        self.results[message.request_id] = NetworkFlowResult(
            completed=True,
            result=result,
            ticks_elapsed=self.network.clock.now - state["started_at"],
            messages_sent=self.network.sent_count,
            replays_seen=self._replays,
            retries=state["retries"],
            degraded=state["degraded"],
            reason="granted" if result.granted else "denied",
        )
        state["phase"] = "done"
        self._cancel_timer(state)

    # -------------------------------------------------------- terminals

    def _record_failure(self, request_id: str, reason: str) -> None:
        state = self._pending[request_id]
        state["phase"] = "done"
        self._cancel_timer(state)
        self.results[request_id] = NetworkFlowResult(
            completed=False,
            result=None,
            ticks_elapsed=self.network.clock.now - state["started_at"],
            messages_sent=self.network.sent_count,
            replays_seen=self._replays,
            retries=state["retries"],
            degraded=state["degraded"],
            reason=reason,
        )

    @staticmethod
    def _cancel_timer(state: dict) -> None:
        timer = state.get("timer")
        if timer is not None:
            timer.cancel()
            state["timer"] = None

    def _audit_event(self, state: dict, kind: str, detail: str) -> None:
        if self.audit_log is None:
            return
        self.audit_log.append_event(
            timestamp=self.network.clock.now,
            operation=state["operation"],
            object_name=state["object_name"],
            kind=kind,
            detail=detail,
        )

    # ------------------------------------------------------------ driver

    def run(self, max_ticks: int = 1_000) -> int:
        """Advance the network until quiet; returns ticks elapsed.

        Quiet includes the flow timers: a flow whose messages were all
        dropped still terminates (with ``completed=False``) before this
        returns, because its timeout keeps the run alive until it fires.
        """
        return self.network.run_until_quiet(self.dispatch, max_ticks=max_ticks)

    def result_of(self, request_id: str) -> Optional[NetworkFlowResult]:
        return self.results.get(request_id)

    def stats(self) -> Dict[str, int]:
        """Aggregate fault-tolerance counters across all flows."""
        return {
            "flows_started": self.flows_started,
            "flows_terminal": len(self.results),
            "retries": self.retries,
            "timeouts_fired": self.timeouts_fired,
            "degradations": self.degradations,
            "flows_timed_out": self.flows_timed_out,
            "flows_abandoned": self.flows_abandoned,
            "replays_suppressed": self.replays_suppressed,
            "replays_seen": self._replays,
        }
