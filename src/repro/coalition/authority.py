"""The coalition Attribute Authority with a shared key (Case II).

The coalition AA distributes threshold attribute certificates signed
with the shared private key ``K_AA^-1`` whose additive shares live at
the member domains.  *Consensus is enforced cryptographically*: the AA
cannot produce a signature unless every domain contributes its partial
signature (Section 2.2 Case II).  A domain that dissents simply refuses
to co-sign and the certificate cannot exist — the property the Case I
baseline lacks (see :mod:`repro.baselines.lockbox`).
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import List, Optional, Sequence

from ..crypto.boneh_franklin import (
    SharedKeyGenResult,
    SharedRSAPublicKey,
    dealer_shared_rsa,
    generate_shared_rsa,
)
from ..crypto.joint_signature import (
    JointSignatureError,
    JointSignatureSession,
)
from ..pki.authorities import RevocationAuthority
from ..pki.certificates import (
    RevocationCertificate,
    ThresholdAttributeCertificate,
    ValidityPeriod,
)
from ..pki.store import CertificateStore
from .domain import Domain, User

__all__ = ["ConsensusError", "CoalitionAttributeAuthority"]


class ConsensusError(Exception):
    """Joint issuance failed because not all owner-domains consented."""


class CoalitionAttributeAuthority:
    """The jointly controlled AA of Figure 1.

    Create via :meth:`establish`, which runs shared key generation and
    installs one private-key share at each member domain.
    """

    def __init__(
        self,
        name: str,
        domains: Sequence[Domain],
        public_key: SharedRSAPublicKey,
        keygen_stats: SharedKeyGenResult,
        epoch: int = 0,
    ):
        self.name = name
        self.domains: List[Domain] = list(domains)
        self.public_key = public_key
        self.keygen_stats = keygen_stats
        # The key epoch increments on every re-keying event, keeping
        # certificate serials unique across coalition dynamics.
        self.epoch = epoch
        self.revocation_authority = RevocationAuthority(f"RA_{name}")
        self.directory = CertificateStore()
        self._serials = itertools.count(1)
        self.issuance_attempts = 0
        self.issuance_failures = 0

    # ------------------------------------------------------------ setup

    @classmethod
    def establish(
        cls,
        domains: Sequence[Domain],
        name: str = "AA",
        key_bits: int = 512,
        dealerless: bool = False,
        epoch: int = 0,
    ) -> "CoalitionAttributeAuthority":
        """Run shared key generation among ``domains`` and wire up the AA.

        ``dealerless=True`` uses the full Boneh-Franklin protocol (the
        paper's choice; slower); the default uses the trusted-dealer
        path, which produces identically shaped shares.
        """
        if not domains:
            raise ValueError("a coalition needs at least one domain")
        n = len(domains)
        if dealerless:
            result = generate_shared_rsa(n, bits=key_bits)
        else:
            result = dealer_shared_rsa(n, bits=key_bits)
        authority = cls(
            name=name,
            domains=domains,
            public_key=result.public_key,
            keygen_stats=result,
            epoch=epoch,
        )
        for domain, share in zip(domains, result.shares):
            domain.install_key_share(share, result.public_key)
        return authority

    @property
    def key_id(self) -> str:
        return self.public_key.fingerprint()

    def member_names(self) -> List[str]:
        return [d.name for d in self.domains]

    # --------------------------------------------------------- issuance

    def issue_threshold_certificate(
        self,
        subjects: Sequence[User],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
        requesting_domain: Optional[Domain] = None,
    ) -> ThresholdAttributeCertificate:
        """Jointly issue a threshold AC to ``subjects`` for ``group``.

        Every member domain must co-sign; the requesting domain (default:
        the first member) drives the joint-signature session of §3.2.

        Raises:
            ConsensusError: some domain refused or lost its share, so
                the joint signature — and hence the certificate — cannot
                be produced.
        """
        self.issuance_attempts += 1
        cert = ThresholdAttributeCertificate(
            serial=f"{self.name}/e{self.epoch}/tac-{next(self._serials):06d}",
            subjects=tuple(
                (user.name, user.keypair.public.fingerprint())
                for user in subjects
            ),
            threshold=threshold,
            group=group,
            issuer=self.name,
            issuer_key_id=self.key_id,
            timestamp=now,
            validity=validity,
        )
        signature = self._joint_sign(cert.payload_bytes(), requesting_domain)
        signed = replace(cert, signature=signature)
        self.directory.publish(signed)
        return signed

    def _joint_sign(
        self, payload: bytes, requesting_domain: Optional[Domain]
    ) -> int:
        requestor = requesting_domain or self.domains[0]
        if requestor not in self.domains:
            raise ConsensusError(f"{requestor.name} is not a member domain")
        try:
            requestor.co_signer()
            co_signers = [
                d.co_signer() for d in self.domains if d is not requestor
            ]
        except RuntimeError as exc:
            self.issuance_failures += 1
            raise ConsensusError(str(exc)) from exc
        session = JointSignatureSession(
            requestor_share=requestor.key_share,
            co_signers=co_signers,
            public_key=self.public_key,
        )
        try:
            return session.sign(payload)
        except JointSignatureError as exc:
            self.issuance_failures += 1
            raise ConsensusError(f"joint signature failed: {exc}") from exc

    # -------------------------------------------------------- revocation

    def revoke_certificate(
        self, cert: ThresholdAttributeCertificate, now: int
    ) -> RevocationCertificate:
        """Revoke via the coalition's RA and publish to the directory."""
        revocation = self.revocation_authority.revoke(cert, now)
        self.directory.publish(revocation)
        return revocation

    def revoke_all(self, now: int) -> List[RevocationCertificate]:
        """Revoke every live threshold AC (used on re-keying, §6)."""
        revocations = []
        for cert in self.directory.all_certificates():
            if not isinstance(cert, ThresholdAttributeCertificate):
                continue
            if self.directory.is_revoked(cert.serial, now):
                continue
            revocations.append(self.revoke_certificate(cert, now))
        return revocations

    def live_certificates(self, now: int) -> List[ThresholdAttributeCertificate]:
        return [
            cert
            for cert in self.directory.all_certificates()
            if isinstance(cert, ThresholdAttributeCertificate)
            and cert.validity.contains(now)
            and not self.directory.is_revoked(cert.serial, now)
        ]
