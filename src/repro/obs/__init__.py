"""repro.obs — the unified observability layer: metrics + decision traces.

Two halves, one purpose — making every authorization decision
*explainable and measurable* at serving scale:

* ``metrics``: :class:`MetricsRegistry` with typed counters, gauges and
  fixed-bucket histograms; deterministic ``snapshot()`` (stable JSON
  schema ``repro.metrics/v1``) and cross-shard ``merge()``.  The five
  formerly ad-hoc ``stats()`` dicts (belief store, derivation engine,
  authorization protocol, coalition server, sharded service) are views
  over these registries now.
* ``trace``: per-request :class:`TraceSpan` trees threaded from service
  admission through queue wait, epoch pin, derivation (axiom names +
  proof-step counts) to audit append — zero-cost when disabled, JSONL
  export and an in-memory ring when enabled.

See DESIGN.md §10 for the architecture.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_snapshot,
)
from .trace import Tracer, TraceSpan, render_span

__all__ = [
    "SCHEMA",
    "DEFAULT_LATENCY_BUCKETS_S",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_snapshot",
    "Tracer",
    "TraceSpan",
    "render_span",
]
