"""Per-request decision traces: span trees from admission to audit.

The paper's protocol is a *derivation* — every grant is justified by a
chain of axiom applications — so a production serving layer owes the
same explainability per request: why was request R granted, under
which epoch, after how long in queue?  A :class:`TraceSpan` tree
records exactly that.  The service threads one root span per ticket
through admission, queue wait, epoch pin, shard evaluation (derivation
with axiom names and proof-step counts), and audit append; the trace
id lands in the hash-chained audit entry so auditors can join the two
records.

Tracing is **zero-cost when off** (the default): a disabled
:class:`Tracer` returns ``None`` from :meth:`Tracer.begin` and every
instrumentation site is guarded by ``if span is not None`` — no span
objects, no clock reads, no buffer traffic.

Span structure for a served request (see DESIGN.md §10)::

    request                 trace_id, operation, object, seq
    ├─ admission            shard, epoch pinned at admission
    ├─ queue_wait           push → worker dequeue
    ├─ barrier_wait         (only when a same-nonce predecessor ran)
    ├─ epoch_pin            epoch_id the evaluation binds to
    ├─ derivation           granted, reason, axioms, proof_steps
    └─ audit_append         audit sequence number

A shed request replaces everything after ``admission`` with a single
``shed`` span carrying the overload reason.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["TraceSpan", "Tracer", "render_span"]


class TraceSpan:
    """One timed node of a per-request trace tree."""

    __slots__ = (
        "trace_id",
        "name",
        "attrs",
        "children",
        "started_at",
        "ended_at",
    )

    def __init__(self, name: str, trace_id: str = "", **attrs: object):
        self.trace_id = trace_id
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs)
        self.children: List["TraceSpan"] = []
        self.started_at = time.perf_counter()
        self.ended_at: Optional[float] = None

    # ------------------------------------------------------------ building

    def child(self, name: str, **attrs: object) -> "TraceSpan":
        """Open a child span (started now) under this one."""
        span = TraceSpan(name, trace_id=self.trace_id, **attrs)
        self.children.append(span)
        return span

    def end(self, **attrs: object) -> "TraceSpan":
        """Close the span (idempotent) and attach final attributes."""
        if self.ended_at is None:
            self.ended_at = time.perf_counter()
        if attrs:
            self.attrs.update(attrs)
        return self

    @property
    def duration_s(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    def record_error(self, exc: BaseException) -> "TraceSpan":
        """Mark this span errored and attach a closed ``error`` child.

        Used by per-ticket fault isolation: the request's root span
        records the exception class and message, so an errored decision
        is explainable the same way a derivation is.
        """
        self.attrs["errored"] = True
        return self.child(
            "error", error_type=type(exc).__name__, message=str(exc)
        ).end()

    # ----------------------------------------------------------- queries

    def find(self, name: str) -> Optional["TraceSpan"]:
        """First descendant (pre-order) named ``name``, or None."""
        for span in self.walk():
            if span is not self and span.name == name:
                return span
        return None

    def walk(self):
        """Pre-order traversal of the span tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def child_names(self) -> List[str]:
        return [c.name for c in self.children]

    # ------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict; times become durations relative to the root."""
        out: Dict[str, object] = {
            "name": self.name,
            "duration_ms": (
                round(self.duration_s * 1000, 6)
                if self.duration_s is not None
                else None
            ),
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }
        if self.trace_id:
            out["trace_id"] = self.trace_id
        return out


class Tracer:
    """Factory, buffer and JSONL exporter for request traces.

    Disabled (the default) it does nothing and allocates nothing:
    :meth:`begin` returns ``None`` and callers skip all
    instrumentation.  Enabled, finished root spans land in a bounded
    in-memory ring (for ``explain``-style inspection) and, when
    ``export_path`` is set, are appended to a JSONL file one trace per
    line.
    """

    def __init__(
        self,
        enabled: bool = False,
        export_path: Optional[str] = None,
        buffer_size: int = 256,
    ):
        self.enabled = enabled
        self.export_path = export_path
        self._buffer: Deque[TraceSpan] = deque(maxlen=buffer_size)
        self._lock = threading.Lock()
        # Export I/O runs under its own lock so shard workers recording
        # spans never serialize behind a disk write; the handle is
        # opened once, lazily, and line-buffered so each trace is
        # visible to tail-readers as soon as it is written.
        self._io_lock = threading.Lock()
        self._export_fh = None
        self.spans_started = 0
        self.spans_finished = 0

    def begin(self, name: str, trace_id: str, **attrs: object) -> Optional[TraceSpan]:
        """Open a root span, or ``None`` when tracing is disabled."""
        if not self.enabled:
            return None
        with self._lock:
            self.spans_started += 1
        return TraceSpan(name, trace_id=trace_id, **attrs)

    def finish(self, span: Optional[TraceSpan]) -> None:
        """Close a root span and retain/export it.  ``None`` is a no-op."""
        if span is None:
            return
        span.end()
        line = None
        if self.export_path is not None:
            line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self.spans_finished += 1
            self._buffer.append(span)
        if line is not None:
            with self._io_lock:
                if self._export_fh is None:
                    self._export_fh = open(
                        self.export_path, "a", encoding="utf-8", buffering=1
                    )
                self._export_fh.write(line + "\n")

    def close(self) -> None:
        """Flush and close the export handle (idempotent)."""
        with self._io_lock:
            if self._export_fh is not None:
                self._export_fh.close()
                self._export_fh = None

    def recent(self, n: Optional[int] = None) -> List[TraceSpan]:
        """The most recent finished root spans, oldest first."""
        with self._lock:
            spans = list(self._buffer)
        return spans if n is None else spans[-n:]

    def find_trace(self, trace_id: str) -> Optional[TraceSpan]:
        """The buffered root span with this trace id, if still retained."""
        with self._lock:
            for span in reversed(self._buffer):
                if span.trace_id == trace_id:
                    return span
        return None


def render_span(span: TraceSpan, indent: int = 0) -> str:
    """Human-readable rendering of a span tree with per-span timings."""
    pad = "  " * indent
    duration = span.duration_s
    timing = f"{duration * 1000:9.3f} ms" if duration is not None else "  (open)  "
    attrs = ""
    if span.attrs:
        parts = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
        attrs = f"  [{parts}]"
    head = f"{pad}{timing}  {span.name}{attrs}"
    lines = [head]
    for child in span.children:
        lines.append(render_span(child, indent + 1))
    return "\n".join(lines)
