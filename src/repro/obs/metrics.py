"""Typed metrics: counters, gauges, and fixed-bucket histograms.

Every layer of the stack (belief store, derivation engine,
authorization protocol, coalition server, sharded service) used to
report counters through its own ad-hoc ``stats()`` dict.  This module
is the unified substrate those dicts now sit on: each component owns a
:class:`MetricsRegistry`, hot paths increment :class:`Counter` /
observe into :class:`Histogram` objects directly (no name lookup per
event), and ``stats()`` remains a thin *view* reading the same
registry values — callers of the old dicts never notice.

Snapshots are plain dicts with a stable, versioned schema
(:data:`SCHEMA`), so they serialize to JSON directly and merge across
shards deterministically:

* counters merge by **sum** (monotonic event counts),
* gauges merge by **sum** (per-shard sizes add up; shared-structure
  gauges such as the global nonce ledger are reported once, at the
  layer that owns the structure),
* histograms merge by **pointwise bucket sum** and require identical
  bucket bounds (mismatched bounds raise rather than silently skew).

Registries are not themselves synchronized: hot-path owners already
hold their own locks (per-shard evaluation locks, the service's
admission lock), and a snapshot taken while workers run is weakly
consistent — quiesce (``drain()``) first when exact totals matter.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil
from typing import Dict, Sequence, Tuple

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "validate_snapshot",
    "histogram_quantile",
    "DEFAULT_LATENCY_BUCKETS_S",
]

SCHEMA = "repro.metrics/v1"

# Upper bounds (seconds) for latency histograms: ~100us to 10s, with an
# implicit +inf bucket.  Fixed so cross-shard and cross-run merges line up.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str, initial: int = 0):
        self.name = name
        self._value = initial

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self._value += n

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A point-in-time level (queue depth, cache size, ...)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str, initial: float = 0):
        self.name = name
        self._value = initial

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name}={self._value})"


class Histogram:
    """A fixed-bucket distribution (cumulative-free, per-bucket counts).

    ``bounds`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket, so ``len(counts) ==
    len(bounds) + 1``.  Bounds are fixed at construction: merges across
    shards and runs are exact pointwise sums, never re-binned.
    """

    __slots__ = ("name", "bounds", "_counts", "_sum", "_count")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and ascending")
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * (len(self.bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        A conservative (over-)estimate by construction; the overflow
        bucket reports the last finite bound.  0.0 when empty.
        """
        if self._count == 0:
            return 0.0
        if not 0 <= q <= 1:
            raise ValueError("quantile q must be in [0, 1]")
        # Deterministic nearest-rank (ceil), matching loadgen.percentile.
        rank = max(1, ceil(q * self._count))
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - unreachable

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """A namespace of typed metrics with deterministic snapshots.

    ``namespace`` prefixes every metric name in the snapshot
    (``service.submitted``), so snapshots from different layers merge
    without collisions while same-layer snapshots from different
    shards merge by summing.
    """

    def __init__(self, namespace: str = ""):
        self.namespace = namespace
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------ registration

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_S,
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_fresh(name)
            metric = self._histograms[name] = Histogram(name, bounds)
        elif metric.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} re-registered with different bounds"
            )
        return metric

    def _check_fresh(self, name: str) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if name in table:
                raise ValueError(
                    f"metric name {name!r} already registered as another type"
                )

    # ------------------------------------------------------------- forks

    def fork(self) -> "MetricsRegistry":
        """A clone carrying the current values, diverging afterwards.

        Backs protocol/engine/store forks (epoch snapshots): cumulative
        counters carry over so per-request deltas stay meaningful on
        the fork, exactly as the ad-hoc int counters used to.
        """
        clone = MetricsRegistry(self.namespace)
        for name, counter in self._counters.items():
            clone._counters[name] = Counter(name, counter.value)
        for name, gauge in self._gauges.items():
            clone._gauges[name] = Gauge(name, gauge.value)
        for name, hist in self._histograms.items():
            new = Histogram(name, hist.bounds)
            new._counts = list(hist._counts)
            new._sum = hist._sum
            new._count = hist._count
            clone._histograms[name] = new
        return clone

    # --------------------------------------------------------- snapshots

    def _qualified(self, name: str) -> str:
        return f"{self.namespace}.{name}" if self.namespace else name

    def snapshot(self) -> Dict[str, object]:
        """The registry as a stable, JSON-ready dict (sorted keys)."""
        return {
            "schema": SCHEMA,
            "counters": {
                self._qualified(n): c.value
                for n, c in sorted(self._counters.items())
            },
            "gauges": {
                self._qualified(n): g.value
                for n, g in sorted(self._gauges.items())
            },
            "histograms": {
                self._qualified(n): {
                    "bounds": list(h.bounds),
                    "counts": list(h._counts),
                    "sum": h._sum,
                    "count": h._count,
                }
                for n, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def merge(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
        """Combine snapshots (e.g. one per shard) into one.

        Counters and gauges sum; histograms sum pointwise and must
        agree on bucket bounds.  Deterministic: the result depends only
        on the multiset of inputs, not their order.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for snap in snapshots:
            validate_snapshot(snap)
            for name, value in snap["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap["gauges"].items():
                gauges[name] = gauges.get(name, 0) + value
            for name, hist in snap["histograms"].items():
                existing = histograms.get(name)
                if existing is None:
                    histograms[name] = {
                        "bounds": list(hist["bounds"]),
                        "counts": list(hist["counts"]),
                        "sum": hist["sum"],
                        "count": hist["count"],
                    }
                    continue
                if existing["bounds"] != list(hist["bounds"]):
                    raise ValueError(
                        f"cannot merge histogram {name!r}: bucket bounds differ"
                    )
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], hist["counts"])
                ]
                existing["sum"] += hist["sum"]
                existing["count"] += hist["count"]
        return {
            "schema": SCHEMA,
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


def histogram_quantile(hist: Dict[str, object], q: float) -> float:
    """Quantile estimate from a *snapshot* histogram dict.

    Same conservative bucket-upper-bound, nearest-rank definition as
    :meth:`Histogram.quantile`, but computed from the serialized
    ``{bounds, counts, count}`` form — what benchmark summaries and the
    chaos harness read back out of a merged :meth:`MetricsRegistry.merge`
    snapshot.  0.0 when the histogram is empty.
    """
    if not 0 <= q <= 1:
        raise ValueError("quantile q must be in [0, 1]")
    bounds = hist["bounds"]
    counts = hist["counts"]
    total = hist["count"]
    if total == 0:
        return 0.0
    rank = max(1, ceil(q * total))
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank:
            return bounds[min(i, len(bounds) - 1)]
    return bounds[-1]  # pragma: no cover - count > sum(counts) only


def validate_snapshot(snapshot: Dict[str, object]) -> None:
    """Raise ValueError unless ``snapshot`` matches the documented schema.

    The schema the bench smoke and the ``metrics`` CLI subcommand pin:

    * ``schema`` == :data:`SCHEMA`
    * ``counters``: str -> int (non-negative)
    * ``gauges``: str -> int | float
    * ``histograms``: str -> {bounds: [float...], counts: [int...],
      sum: float, count: int} with ``len(counts) == len(bounds) + 1``
      and ``count == sum(counts)``
    """
    if not isinstance(snapshot, dict):
        raise ValueError("snapshot must be a dict")
    if snapshot.get("schema") != SCHEMA:
        raise ValueError(f"snapshot schema is not {SCHEMA!r}")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snapshot.get(section), dict):
            raise ValueError(f"snapshot section {section!r} missing or not a dict")
    for name, value in snapshot["counters"].items():
        if not isinstance(name, str) or not isinstance(value, int) or value < 0:
            raise ValueError(f"counter {name!r} must map to a non-negative int")
    for name, value in snapshot["gauges"].items():
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            raise ValueError(f"gauge {name!r} must map to a number")
    for name, hist in snapshot["histograms"].items():
        if not isinstance(hist, dict):
            raise ValueError(f"histogram {name!r} must be a dict")
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not all(
            isinstance(b, (int, float)) for b in bounds
        ):
            raise ValueError(f"histogram {name!r} bounds must be numbers")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} bounds must ascend")
        if not isinstance(counts, list) or not all(
            isinstance(c, int) and c >= 0 for c in counts
        ):
            raise ValueError(f"histogram {name!r} counts must be ints")
        if len(counts) != len(bounds) + 1:
            raise ValueError(
                f"histogram {name!r} needs len(bounds)+1 counts "
                f"(got {len(counts)} for {len(bounds)} bounds)"
            )
        if hist.get("count") != sum(counts):
            raise ValueError(f"histogram {name!r} count != sum(counts)")
        if not isinstance(hist.get("sum"), (int, float)):
            raise ValueError(f"histogram {name!r} sum must be a number")
