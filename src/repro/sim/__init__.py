"""Discrete message-passing simulation substrate (Appendix C's model).

Per-principal clocks with skew over a global timeline, plus a network
whose environment principal may delay, drop, or replay messages.
"""

from .clock import GlobalClock, LocalClock
from .network import AdversaryPolicy, Envelope, Network

__all__ = [
    "GlobalClock",
    "LocalClock",
    "AdversaryPolicy",
    "Envelope",
    "Network",
]
