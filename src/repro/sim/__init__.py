"""Discrete message-passing simulation substrate (Appendix C's model).

Per-principal clocks with skew over a global timeline, plus a network
whose environment principal may delay, drop, or replay messages.
"""

from .clock import GlobalClock, LocalClock, TickScheduler, TimerHandle
from .network import AdversaryPolicy, Envelope, Network

__all__ = [
    "GlobalClock",
    "LocalClock",
    "TickScheduler",
    "TimerHandle",
    "AdversaryPolicy",
    "Envelope",
    "Network",
]
