"""Per-principal clocks over a global simulated timeline.

Appendix C: each principal has a local clock; different principals'
clocks may disagree; the environment principal Pe's clock is real time.
A :class:`GlobalClock` is Pe's clock; each :class:`LocalClock` maps real
time to local time through a fixed skew (the paper assumes clocks within
a compound principal are synchronized, which callers model by giving the
members identical skews).

:class:`TickScheduler` adds tick-driven callbacks over a
:class:`GlobalClock`: one-shot timers (``call_at`` / ``call_after``) and
periodic timers (``call_every``), all cancellable.  The fault-tolerance
layer (flow timeouts, retry backoff, periodic CRL sync) is built on it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["GlobalClock", "LocalClock", "TickScheduler", "TimerHandle"]


class GlobalClock:
    """The environment's real-time clock: integer ticks, monotone."""

    def __init__(self, start: int = 0):
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance(self, ticks: int = 1) -> int:
        if ticks < 0:
            raise ValueError("time cannot run backwards")
        self._now += ticks
        return self._now


class LocalClock:
    """A principal's local clock: real time plus a fixed skew."""

    def __init__(self, global_clock: GlobalClock, skew: int = 0):
        self._global = global_clock
        self.skew = skew

    @property
    def now(self) -> int:
        return self._global.now + self.skew

    def local_to_real(self, local_time: int) -> int:
        return local_time - self.skew

    def real_to_local(self, real_time: int) -> int:
        return real_time + self.skew


class TimerHandle:
    """A scheduled callback; ``cancel()`` makes firing a no-op."""

    __slots__ = ("callback", "fire_at", "interval", "cancelled", "fired")

    def __init__(
        self,
        callback: Callable[[], None],
        fire_at: int,
        interval: Optional[int] = None,
    ):
        self.callback = callback
        self.fire_at = fire_at
        self.interval = interval  # None: one-shot; else: reschedule every
        self.cancelled = False
        self.fired = False

    @property
    def periodic(self) -> bool:
        return self.interval is not None

    def cancel(self) -> None:
        self.cancelled = True


class TickScheduler:
    """Tick-driven callbacks over a :class:`GlobalClock`.

    The scheduler never advances time itself; a driver (typically
    :meth:`repro.sim.Network.run_until_quiet`) advances the clock and
    calls :meth:`fire_due` once per tick.  Pending *one-shot* timers
    keep such drivers alive (:meth:`keeps_alive`); periodic timers do
    not, or every run would spin forever.
    """

    def __init__(self, clock: GlobalClock):
        self.clock = clock
        self._heap: List[Tuple[int, int, TimerHandle]] = []
        self._tiebreak = itertools.count()
        self.timers_fired = 0

    # --------------------------------------------------------- schedule

    def call_at(self, tick: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` at the first ``fire_due`` with now >= tick."""
        handle = TimerHandle(callback, fire_at=tick)
        heapq.heappush(self._heap, (tick, next(self._tiebreak), handle))
        return handle

    def call_after(self, delay: int, callback: Callable[[], None]) -> TimerHandle:
        """Run ``callback`` ``delay`` ticks from now (delay >= 1)."""
        if delay < 1:
            raise ValueError("delay must be at least one tick")
        return self.call_at(self.clock.now + delay, callback)

    def call_every(
        self,
        interval: int,
        callback: Callable[[], None],
        start_after: Optional[int] = None,
    ) -> TimerHandle:
        """Run ``callback`` every ``interval`` ticks until cancelled."""
        if interval < 1:
            raise ValueError("interval must be at least one tick")
        first = self.clock.now + (interval if start_after is None else start_after)
        handle = TimerHandle(callback, fire_at=first, interval=interval)
        heapq.heappush(self._heap, (first, next(self._tiebreak), handle))
        return handle

    # ------------------------------------------------------------- fire

    def fire_due(self) -> int:
        """Fire every timer due at or before the current tick.

        Callbacks may schedule new timers; timers they schedule for a
        future tick fire in later calls (``call_after`` enforces
        ``delay >= 1``, so a well-behaved callback cannot live-lock the
        current tick).  Returns the number of callbacks fired.
        """
        now = self.clock.now
        fired = 0
        while self._heap and self._heap[0][0] <= now:
            _, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.periodic:
                handle.fire_at = handle.fire_at + handle.interval
                heapq.heappush(
                    self._heap, (handle.fire_at, next(self._tiebreak), handle)
                )
            else:
                handle.fired = True
            fired += 1
            self.timers_fired += 1
            handle.callback()
        return fired

    # ------------------------------------------------------------ state

    def pending(self) -> int:
        """Live (non-cancelled) timers still scheduled."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def keeps_alive(self) -> bool:
        """True while a live *one-shot* timer is still pending."""
        return any(
            not h.cancelled and not h.periodic for _, _, h in self._heap
        )

    def next_fire(self) -> Optional[int]:
        """Earliest live timer tick, or None when nothing is scheduled."""
        live = [t for t, _, h in self._heap if not h.cancelled]
        return min(live) if live else None
