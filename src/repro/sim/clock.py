"""Per-principal clocks over a global simulated timeline.

Appendix C: each principal has a local clock; different principals'
clocks may disagree; the environment principal Pe's clock is real time.
A :class:`GlobalClock` is Pe's clock; each :class:`LocalClock` maps real
time to local time through a fixed skew (the paper assumes clocks within
a compound principal are synchronized, which callers model by giving the
members identical skews).
"""

from __future__ import annotations


__all__ = ["GlobalClock", "LocalClock"]


class GlobalClock:
    """The environment's real-time clock: integer ticks, monotone."""

    def __init__(self, start: int = 0):
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance(self, ticks: int = 1) -> int:
        if ticks < 0:
            raise ValueError("time cannot run backwards")
        self._now += ticks
        return self._now


class LocalClock:
    """A principal's local clock: real time plus a fixed skew."""

    def __init__(self, global_clock: GlobalClock, skew: int = 0):
        self._global = global_clock
        self.skew = skew

    @property
    def now(self) -> int:
        return self._global.now + self.skew

    def local_to_real(self, local_time: int) -> int:
        return local_time - self.skew

    def real_to_local(self, real_time: int) -> int:
        return real_time + self.skew
