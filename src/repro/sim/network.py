"""A simulated message-passing network with an adversarial environment.

The environment principal Pe of Appendix C owns the message buffers and
may delay, drop, duplicate (replay) or reorder messages.  Nodes send
into the network; delivery happens when the global clock reaches the
scheduled arrival tick.  The delivered envelopes keep their original
sender and send-time so receivers can run freshness checks.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Set, Tuple

from .clock import GlobalClock, TickScheduler

__all__ = ["Envelope", "Network", "AdversaryPolicy"]


@dataclass(frozen=True)
class Envelope:
    """A message in flight: payload plus routing/timing metadata."""

    sender: str
    recipient: str
    payload: object
    sent_at: int  # real time when handed to the network
    replayed: bool = False


@dataclass
class AdversaryPolicy:
    """Knobs for the environment's misbehaviour.

    ``drop_rate``/``replay_rate`` are probabilities per message;
    ``max_extra_delay`` adds uniform random latency on top of the base
    delay.  A seeded RNG keeps simulations reproducible.
    """

    drop_rate: float = 0.0
    replay_rate: float = 0.0
    max_extra_delay: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for rate in (self.drop_rate, self.replay_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be probabilities")
        self._rng = random.Random(self.seed)

    def extra_delay(self) -> int:
        if self.max_extra_delay <= 0:
            return 0
        return self._rng.randint(0, self.max_extra_delay)

    def drops(self) -> bool:
        return self._rng.random() < self.drop_rate

    def replays(self) -> bool:
        return self._rng.random() < self.replay_rate


class Network:
    """Delivers envelopes by arrival tick; the adversary may interfere."""

    def __init__(
        self,
        clock: GlobalClock,
        base_delay: int = 1,
        adversary: Optional[AdversaryPolicy] = None,
        record_trace: bool = False,
    ):
        self.clock = clock
        self.base_delay = base_delay
        self.adversary = adversary or AdversaryPolicy()
        # Timers (flow timeouts, retry backoff, periodic sync) share the
        # network's timeline; the run loops fire them once per tick.
        self.scheduler = TickScheduler(clock)
        self._queue: List[Tuple[int, int, Envelope]] = []
        self._tiebreak = itertools.count()
        self._partitions: Set[frozenset] = set()
        self.sent_count = 0
        self.dropped_count = 0
        self.replayed_count = 0
        self.partitioned_count = 0
        # Envelopes still queued when the last run_until_quiet gave up
        # (max_ticks exhausted); 0 after a run that fully drained.
        self.undelivered = 0
        # Optional full trace: ("send"|"deliver", tick, envelope) tuples,
        # consumed by repro.semantics.bridge to reconstruct a Run.
        self.record_trace = record_trace
        self.trace: List[Tuple[str, int, Envelope]] = []

    # ------------------------------------------------------- partitions

    def partition(self, a: str, b: str) -> None:
        """Sever the link between ``a`` and ``b`` (both directions).

        Messages sent across a severed link are silently lost — exactly
        like an adversary drop, but deterministic — and counted in
        ``partitioned_count``.  Already-queued envelopes still arrive
        (they are in flight past the cut).
        """
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        """Restore the link between ``a`` and ``b``."""
        self._partitions.discard(frozenset((a, b)))

    def link_up(self, a: str, b: str) -> bool:
        return frozenset((a, b)) not in self._partitions

    def send(self, sender: str, recipient: str, payload: object) -> None:
        """Hand a message to the network at the current tick."""
        self.sent_count += 1
        envelope = Envelope(
            sender=sender,
            recipient=recipient,
            payload=payload,
            sent_at=self.clock.now,
        )
        if self.record_trace:
            self.trace.append(("send", self.clock.now, envelope))
        if not self.link_up(sender, recipient):
            self.partitioned_count += 1
            return
        if self.adversary.drops():
            self.dropped_count += 1
            return
        arrival = self.clock.now + self.base_delay + self.adversary.extra_delay()
        heapq.heappush(self._queue, (arrival, next(self._tiebreak), envelope))
        if self.adversary.replays():
            self.replayed_count += 1
            replay = Envelope(
                sender=sender,
                recipient=recipient,
                payload=payload,
                sent_at=self.clock.now,
                replayed=True,
            )
            late = arrival + 1 + self.adversary.extra_delay()
            heapq.heappush(self._queue, (late, next(self._tiebreak), replay))

    def deliverable(self) -> List[Envelope]:
        """Pop every envelope whose arrival tick has passed."""
        out: List[Envelope] = []
        now = self.clock.now
        while self._queue and self._queue[0][0] <= now:
            _, _, envelope = heapq.heappop(self._queue)
            if self.record_trace:
                self.trace.append(("deliver", now, envelope))
            out.append(envelope)
        return out

    def pending(self) -> int:
        return len(self._queue)

    def run_until_quiet(
        self,
        dispatch: Callable[[Envelope], None],
        max_ticks: int = 10_000,
    ) -> int:
        """Advance time, dispatching deliveries, until the network quiesces.

        Quiescence means the queue has drained *and* no live one-shot
        timer is still pending on :attr:`scheduler` (flow timeouts must
        get their chance to fire even when the adversary dropped every
        message in flight).  Periodic timers never block quiescence.

        Returns the number of ticks advanced.  ``dispatch`` may send new
        messages (they get queued and delivered in later ticks).  When
        ``max_ticks`` is exhausted with envelopes still queued, the
        leftover count is surfaced in :attr:`undelivered` so callers can
        distinguish "drained" from "gave up".
        """
        start = self.clock.now
        for _ in range(max_ticks):
            if not self._queue and not self.scheduler.keeps_alive():
                break
            self.clock.advance(1)
            for envelope in self.deliverable():
                dispatch(envelope)
            self.scheduler.fire_due()
        self.undelivered = len(self._queue)
        return self.clock.now - start

    def run_for(
        self,
        ticks: int,
        dispatch: Callable[[Envelope], None],
    ) -> int:
        """Advance exactly ``ticks`` ticks, delivering and firing timers.

        Unlike :meth:`run_until_quiet` this never stops early, so
        periodic timers (e.g. a directory sync loop) keep running even
        across quiet stretches.  Returns envelopes dispatched.
        """
        dispatched = 0
        for _ in range(ticks):
            self.clock.advance(1)
            for envelope in self.deliverable():
                dispatch(envelope)
                dispatched += 1
            self.scheduler.fire_due()
        return dispatched
