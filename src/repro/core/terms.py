"""Primitive terms of the logic: principals, compound principals, keys, groups.

Appendix A's term language (set Gamma) contains principals, public keys,
times, data constants and primitive propositions.  The paper's extensions
revolve around three kinds of subjects:

* simple principals ``P`` (users, domains, servers, authorities);
* **compound principals** ``CP = {P1, ..., Pn}`` that jointly own the
  distributed shares of one private key (F5/F7/F9);
* **threshold compound principals** ``CP_{m,n}`` where any ``m`` of the
  ``n`` members may act for the compound principal (F10/F15);

plus the *selective distribution* binding ``P|K`` — principal ``P``
cryptographically bound to public key ``K`` (F13/F16).

All terms are immutable and hashable so they can live in belief stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Tuple, Union

from .hashcons import cached_hash, interned

__all__ = [
    "Principal",
    "KeyRef",
    "Group",
    "KeyBoundPrincipal",
    "CompoundPrincipal",
    "ThresholdPrincipal",
    "KeyBoundCompound",
    "Subject",
    "PrincipalLike",
    "Var",
    "is_ground",
    "intern_principal",
    "intern_group",
    "intern_key",
]


@cached_hash
@dataclass(frozen=True, order=True)
class Principal:
    """A simple system principal: user, domain, server, CA, AA or RA."""

    name: str

    def __str__(self) -> str:
        return self.name

    def bound_to(self, key: "KeyRef") -> "KeyBoundPrincipal":
        """The selective-distribution binding ``P|K`` of F13."""
        return KeyBoundPrincipal(principal=self, key=key)


@cached_hash
@dataclass(frozen=True, order=True)
class KeyRef:
    """A reference to a public key, identified by its fingerprint.

    The logic manipulates keys symbolically; the coalition layer maps
    fingerprints to actual RSA or shared-RSA public keys.  The label is
    cosmetic only — identity is the fingerprint.
    """

    key_id: str
    label: str = field(default="", compare=False)

    def __str__(self) -> str:
        return self.label or f"K<{self.key_id[:8]}>"


@cached_hash
@dataclass(frozen=True, order=True)
class Group:
    """A named group appearing on ACLs (e.g. G_write, G_read)."""

    name: str

    def __str__(self) -> str:
        return self.name


@cached_hash
@dataclass(frozen=True)
class KeyBoundPrincipal:
    """``P|K``: principal P bound to public key K in an identity cert."""

    principal: Principal
    key: KeyRef

    def __str__(self) -> str:
        return f"{self.principal}|{self.key}"


@cached_hash
@dataclass(frozen=True)
class CompoundPrincipal:
    """``CP = {P1, ..., Pn}``: joint owners of one shared key.

    Members may be plain principals or key-bound principals (the latter
    is how threshold attribute certificates pin each subject to the key
    it must sign access requests with).
    """

    members: Tuple[Union[Principal, KeyBoundPrincipal], ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a compound principal needs at least one member")
        names = [self._name_of(m) for m in self.members]
        if len(set(names)) != len(names):
            raise ValueError("compound principal members must be distinct")

    @staticmethod
    def _name_of(member: Union[Principal, KeyBoundPrincipal]) -> str:
        if isinstance(member, KeyBoundPrincipal):
            return member.principal.name
        return member.name

    @classmethod
    def of(
        cls, members: Iterable[Union[Principal, KeyBoundPrincipal]]
    ) -> "CompoundPrincipal":
        """Build from any iterable, sorting members for canonical identity."""
        ordered = tuple(sorted(members, key=cls._name_of))
        return cls(members=ordered)

    @property
    def size(self) -> int:
        return len(self.members)

    def principals(self) -> Tuple[Principal, ...]:
        """The underlying plain principals, stripped of key bindings."""
        return tuple(
            m.principal if isinstance(m, KeyBoundPrincipal) else m
            for m in self.members
        )

    def threshold(self, m: int) -> "ThresholdPrincipal":
        """The threshold construct ``CP_{m,n}`` over this member set."""
        return ThresholdPrincipal(base=self, m=m)

    def __contains__(self, principal: Principal) -> bool:
        return principal in self.principals()

    def __str__(self) -> str:
        inner = ", ".join(str(m) for m in self.members)
        return "{" + inner + "}"


@cached_hash
@dataclass(frozen=True)
class ThresholdPrincipal:
    """``CP_{m,n}``: any m of the n members speak for the compound principal."""

    base: CompoundPrincipal
    m: int

    def __post_init__(self) -> None:
        if not 1 <= self.m <= self.base.size:
            raise ValueError(
                f"threshold m={self.m} out of range for n={self.base.size}"
            )

    @property
    def n(self) -> int:
        return self.base.size

    def __str__(self) -> str:
        return f"{self.base}_{{{self.m},{self.n}}}"


@cached_hash
@dataclass(frozen=True)
class KeyBoundCompound:
    """``CP|K``: a compound principal bound to a single shared key (F16).

    The §2.2 "alternate mechanism": an attribute certificate issued to a
    group of users that themselves own a shared public key.  Access
    requests must be jointly signed with ``K``'s distributed private
    shares (axiom A37).
    """

    compound: CompoundPrincipal
    key: KeyRef

    def __str__(self) -> str:
        return f"{self.compound}|{self.key}"


@cached_hash
@dataclass(frozen=True)
class Var:
    """A pattern variable for axiom schemas and jurisdiction formulas.

    Initial beliefs such as "AA controls (for all G', CP') CP' => G'"
    are stored with Var placeholders; the derivation engine unifies them
    against concrete formulas (see :mod:`repro.core.patterns`).
    """

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


# A subject of a group-membership or key-speaks-for formula.
Subject = Union[
    Principal,
    KeyBoundPrincipal,
    CompoundPrincipal,
    ThresholdPrincipal,
    KeyBoundCompound,
    Var,
]
# Anything that can hold beliefs / say things.
PrincipalLike = Union[Principal, CompoundPrincipal]


def is_ground(term: object) -> bool:
    """True when a term tree contains no pattern variables."""
    if isinstance(term, Var):
        return False
    if isinstance(term, ThresholdPrincipal):
        return is_ground(term.base)
    if isinstance(term, CompoundPrincipal):
        return all(is_ground(m) for m in term.members)
    if isinstance(term, KeyBoundPrincipal):
        return is_ground(term.principal) and is_ground(term.key)
    if isinstance(term, KeyBoundCompound):
        return is_ground(term.compound) and is_ground(term.key)
    return True


# Interning constructors for the leaves hot paths rebuild per request
# (certificate idealization, request idealization).  Interned leaves make
# deep-tree equality checks short-circuit on identity.
intern_principal = interned(Principal)
intern_group = interned(Group)
intern_key = interned(KeyRef)
