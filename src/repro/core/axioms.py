"""Axiom schemas of the logic (Appendix B, A1-A38) as pure functions.

Each function takes premise formulas, checks their shape, and returns the
conclusion formula.  A violated premise raises :class:`AxiomError` — the
derivation engine treats that as "this axiom does not apply", and the
authorization protocol treats an underivable goal as access denial.

The axioms operate on the *contents* of a principal's beliefs: by
necessitation (R2) and belief closure (A1/A4), any axiom theorem lifts
into every principal's belief set, which is how the engine uses them.

Naming follows the paper exactly so proof steps are citable: axiom A10
is :func:`a10_originator_identification`, A22/A23 are
:func:`a22_jurisdiction`, A38 is :func:`a38_threshold_group_says`, etc.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .formulas import (
    At,
    Believes,
    Controls,
    Formula,
    Fresh,
    Has,
    Implies,
    KeySpeaksFor,
    Received,
    Said,
    Says,
    SpeaksForGroup,
)
from .messages import Encrypted, MessageTuple, Signed
from .temporal import Temporal, TemporalKind
from .terms import (
    CompoundPrincipal,
    KeyBoundPrincipal,
    Principal,
    ThresholdPrincipal,
)

__all__ = [
    "AxiomError",
    "a1_belief_closure",
    "a2_belief_introspection",
    "a3_belief_at",
    "a7_interval_instantiation",
    "a8_monotonicity_received",
    "a8_monotonicity_said",
    "a8_monotonicity_has",
    "a8_monotonicity_fresh",
    "a9_reduction",
    "a10_originator_identification",
    "a11_decrypt",
    "a12_read_signed",
    "a15_said_projection",
    "a16_says_projection",
    "a17_said_strip_signature",
    "a18_says_strip_signature",
    "a19_said_to_says",
    "a20_says_to_said",
    "a21_freshness",
    "a22_jurisdiction",
    "a34_group_says",
    "a35_keybound_group_says",
    "a36_compound_group_says",
    "a37_keybound_compound_group_says",
    "a38_threshold_group_says",
]


class AxiomError(Exception):
    """Premises do not fit the axiom schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise AxiomError(message)


# ---------------------------------------------------------------- belief


def a1_belief_closure(belief: Believes, implication_belief: Believes) -> Believes:
    """A1/A4: ``P believes phi`` and ``P believes (phi -> psi)`` give
    ``P believes psi``.  Covers compound principals (A4) identically."""
    _require(isinstance(belief, Believes), "first premise must be a belief")
    _require(
        isinstance(implication_belief, Believes),
        "second premise must be a belief",
    )
    _require(
        belief.subject == implication_belief.subject
        and belief.time == implication_belief.time,
        "beliefs must share subject and time",
    )
    body = implication_belief.body
    _require(isinstance(body, Implies), "second belief must be an implication")
    _require(body.antecedent == belief.body, "antecedent mismatch")
    return Believes(belief.subject, belief.time, body.consequent)


def a2_belief_introspection(belief: Believes) -> Believes:
    """A2/A5: ``P believes phi  ==  P believes P believes phi`` (one hop)."""
    _require(isinstance(belief, Believes), "premise must be a belief")
    return Believes(belief.subject, belief.time, belief)


def a3_belief_at(belief: Believes) -> Believes:
    """A3/A6: believing phi is believing (phi at_P t)."""
    _require(isinstance(belief, Believes), "premise must be a belief")
    located = At(belief.body, belief.subject, belief.time)
    return Believes(belief.subject, belief.time, located)


# ------------------------------------------------------- time/reduction


def a7_interval_instantiation(formula: Formula, t: int) -> Formula:
    """A7: an ``[t1, t2]`` modality holds at each point t in the interval.

    Applies to believes/controls/received/says/said/has/=> uniformly.
    """
    time = getattr(formula, "time", None)
    _require(isinstance(time, Temporal), "formula has no temporal annotation")
    _require(
        time.kind is TemporalKind.ALL,
        "interval instantiation needs a closed-interval annotation",
    )
    _require(time.lo <= t <= time.hi, f"t={t} outside [{time.lo}, {time.hi}]")
    import dataclasses

    return dataclasses.replace(
        formula, time=Temporal.point(t, time.clock)
    )


def a8_monotonicity_received(premise: Received, t_later: int) -> Received:
    """A8a: received at t stays received at any t' >= t."""
    _require(isinstance(premise, Received), "premise must be received")
    _require(premise.time.is_point, "monotonicity applies to point times")
    _require(t_later >= premise.time.lo, "target time precedes premise time")
    return Received(
        premise.subject, Temporal.point(t_later, premise.time.clock), premise.body
    )


def a8_monotonicity_said(premise: Said, t_later: int) -> Said:
    """A8b: said at t stays said at any t' >= t."""
    _require(isinstance(premise, Said), "premise must be said")
    _require(premise.time.is_point, "monotonicity applies to point times")
    _require(t_later >= premise.time.lo, "target time precedes premise time")
    return Said(
        premise.subject, Temporal.point(t_later, premise.time.clock), premise.body
    )


def a8_monotonicity_has(premise: Has, t_later: int) -> Has:
    """A8c: key possession persists."""
    _require(isinstance(premise, Has), "premise must be has")
    _require(premise.time.is_point, "monotonicity applies to point times")
    _require(t_later >= premise.time.lo, "target time precedes premise time")
    return Has(
        premise.subject, Temporal.point(t_later, premise.time.clock), premise.key
    )


def a8_monotonicity_fresh(premise: Fresh, t_earlier: int) -> Fresh:
    """A8d: freshness persists *backwards*: fresh at t is fresh at t' <= t."""
    _require(isinstance(premise, Fresh), "premise must be fresh")
    _require(premise.time.is_point, "monotonicity applies to point times")
    _require(t_earlier <= premise.time.lo, "freshness only extends backwards")
    return Fresh(premise.message, Temporal.point(t_earlier, premise.time.clock))


_REDUCIBLE = (Says, Said, Received, At)


def a9_reduction(nested: At) -> At:
    """A9: ``(phi at_P t1) at_P t2`` with ``t2 >= t1`` gives ``phi at_P t2``.

    Restricted (as in the paper) to phi being an at/says/said/received
    formula, which is stable under relocation.
    """
    _require(isinstance(nested, At), "premise must be an at-formula")
    inner = nested.body
    _require(isinstance(inner, At), "premise must be a nested at-formula")
    _require(inner.place == nested.place, "both at-annotations must share P")
    _require(
        isinstance(inner.body, _REDUCIBLE),
        "reduction applies to at/says/said/received bodies only",
    )
    outer_time, inner_time = nested.time, inner.time
    _require(
        outer_time.lo >= inner_time.lo,
        "outer time must not precede inner time",
    )
    return At(inner.body, nested.place, outer_time)


# --------------------------------------------- originator identification


def _key_subject_matches(speaks: KeySpeaksFor) -> object:
    """The principal identified as signer: P, CP, or CP (from CP_{m,n})."""
    subject = speaks.subject
    if isinstance(subject, ThresholdPrincipal):
        # A10c: a threshold key still identifies the compound principal.
        return subject.base
    return subject


def a10_originator_identification(
    speaks: KeySpeaksFor, received: Received
) -> Tuple[Said, Said]:
    """A10: a verified signature identifies its originator.

    Premises: ``K =>_{t,P} Q`` and ``P received_t <X>_{K^-1}``; concludes
    ``Q said_{t,P} X`` and ``Q said_{t,P} <X>_{K^-1}``.  Covers simple
    principals (A10a), compound principals with shared keys (A10b), and
    threshold constructs (A10c).
    """
    _require(isinstance(speaks, KeySpeaksFor), "first premise must be K => Q")
    _require(isinstance(received, Received), "second premise must be received")
    body = received.body
    _require(isinstance(body, Signed), "received message must be signed")
    _require(body.key == speaks.key, "signature key differs from speaks-for key")
    recv_time = received.time
    _require(recv_time.is_point, "received premise must be at a point time")
    _require(
        speaks.time.covers(recv_time.lo),
        f"key binding {speaks.time} does not cover receive time {recv_time.lo}",
    )
    originator = _key_subject_matches(speaks)
    said_time = Temporal.point(recv_time.lo, received.subject)
    return (
        Said(originator, said_time, body.body),
        Said(originator, said_time, body),
    )


# -------------------------------------------------------------- receiving


def a11_decrypt(received: Received, has_key: Has) -> Received:
    """A11/A13: decrypt with a held private key."""
    _require(isinstance(received, Received), "first premise must be received")
    body = received.body
    _require(isinstance(body, Encrypted), "message must be encrypted")
    _require(isinstance(has_key, Has), "second premise must be key possession")
    _require(has_key.subject == received.subject, "key holder must be receiver")
    _require(has_key.key == body.key, "held key does not open this message")
    _require(
        has_key.time.covers(received.time.lo)
        or has_key.time == received.time,
        "key not held at receive time",
    )
    return Received(received.subject, received.time, body.body)


def a12_read_signed(received: Received) -> Received:
    """A12/A14: a signed message is readable without the verification key."""
    _require(isinstance(received, Received), "premise must be received")
    body = received.body
    _require(isinstance(body, Signed), "message must be signed")
    return Received(received.subject, received.time, body.body)


# ----------------------------------------------------------------- saying


def a15_said_projection(said: Said, index: int) -> Said:
    """A15: saying a tuple is saying each component."""
    _require(isinstance(said, Said), "premise must be said")
    body = said.body
    _require(isinstance(body, MessageTuple), "said message must be a tuple")
    _require(0 <= index < len(body.parts), "tuple index out of range")
    return Said(said.subject, said.time, body.parts[index])


def a16_says_projection(says: Says, index: int) -> Says:
    """A16: like A15 for says."""
    _require(isinstance(says, Says), "premise must be says")
    body = says.body
    _require(isinstance(body, MessageTuple), "says message must be a tuple")
    _require(0 <= index < len(body.parts), "tuple index out of range")
    return Says(says.subject, says.time, body.parts[index])


def a17_said_strip_signature(said: Said) -> Said:
    """A17: principals are responsible for signed content they send."""
    _require(isinstance(said, Said), "premise must be said")
    body = said.body
    _require(isinstance(body, Signed), "said message must be signed")
    return Said(said.subject, said.time, body.body)


def a18_says_strip_signature(says: Says) -> Says:
    """A18: like A17 for says."""
    _require(isinstance(says, Says), "premise must be says")
    body = says.body
    _require(isinstance(body, Signed), "says message must be signed")
    return Says(says.subject, says.time, body.body)


def a19_said_to_says(said: Said, t_says: int) -> Says:
    """A19: ``P said_t X`` implies ``P says_t' X`` for some t' >= ...

    The witness time must not precede the said time's lower bound; the
    conclusion carries a SOME-interval in the general case, but for the
    protocol's use a point witness is supplied explicitly.
    """
    _require(isinstance(said, Said), "premise must be said")
    _require(t_says <= said.time.hi, "says witness must precede said bound")
    return Says(said.subject, Temporal.point(t_says, said.time.clock), said.body)


def a20_says_to_said(says: Says) -> Said:
    """A20: says at t implies said at t."""
    _require(isinstance(says, Says), "premise must be says")
    return Said(says.subject, says.time, says.body)


# -------------------------------------------------------------- freshness


def a21_freshness(fresh: Fresh, composite: object) -> Fresh:
    """A21: ``fresh X`` implies ``fresh F(X, Y)`` for X-dependent F.

    ``composite`` must be a Signed/Encrypted/MessageTuple containing the
    fresh component.
    """
    _require(isinstance(fresh, Fresh), "premise must be a freshness formula")
    component = fresh.message

    def contains(msg: object) -> bool:
        if msg == component:
            return True
        if isinstance(msg, (Signed, Encrypted)):
            return contains(msg.body)
        if isinstance(msg, MessageTuple):
            return any(contains(p) for p in msg.parts)
        return False

    _require(
        isinstance(composite, (Signed, Encrypted, MessageTuple)),
        "composite must be a function image of the component",
    )
    _require(contains(composite), "composite does not depend on the component")
    return Fresh(composite, fresh.time)


# ------------------------------------------------------------ jurisdiction


def a22_jurisdiction(controls: Controls, says: Says) -> At:
    """A22/A23: ``P controls phi`` and ``P says phi`` give ``phi at_P t``.

    The group-membership axioms A24-A33 are (as the paper notes) direct
    instances of this schema with phi a membership formula.
    """
    _require(isinstance(controls, Controls), "first premise must be controls")
    _require(isinstance(says, Says), "second premise must be says")
    _require(controls.subject == says.subject, "controller must be speaker")
    _require(controls.body == says.body, "controlled formula differs from utterance")
    time = says.time
    ct = controls.time
    if time.is_point:
        _require(
            ct.covers(time.lo) or ct == time,
            "jurisdiction does not cover the utterance time",
        )
    else:
        _require(ct == time, "jurisdiction interval mismatch")
    return At(says.body, controls.subject, time)


# ------------------------------------------------------- speaking for groups


def a34_group_says(membership: SpeaksForGroup, says: Says) -> Says:
    """A34: ``Q => G`` and ``Q says X`` give ``G says X``."""
    _require(
        isinstance(membership, SpeaksForGroup), "first premise must be membership"
    )
    subject = membership.subject
    _require(
        isinstance(subject, Principal),
        "A34 applies to simple-principal membership (use A35-A38 otherwise)",
    )
    _require(isinstance(says, Says), "second premise must be says")
    _require(says.subject == subject, "speaker is not the group member")
    _require(says.time.is_point, "utterance must be at a point time")
    _require(
        membership.time.covers(says.time.lo),
        "membership does not cover the utterance time",
    )
    return Says(membership.group, says.time, says.body)


def a35_keybound_group_says(
    membership: SpeaksForGroup, speaks: KeySpeaksFor, says: Says
) -> Says:
    """A35: ``Q|K => G``, ``K => Q``, and ``Q says <X>_{K^-1}`` give
    ``G says X`` -- selective distribution demands a signature with the
    bound key."""
    _require(
        isinstance(membership, SpeaksForGroup), "first premise must be membership"
    )
    subject = membership.subject
    _require(
        isinstance(subject, KeyBoundPrincipal),
        "A35 applies to key-bound membership P|K",
    )
    _require(isinstance(speaks, KeySpeaksFor), "second premise must be K => Q")
    _require(speaks.key == subject.key, "evidence names a different key")
    _require(speaks.subject == subject.principal, "key bound to another principal")
    _require(isinstance(says, Says), "third premise must be says")
    _require(says.subject == subject.principal, "speaker is not the group member")
    body = says.body
    _require(isinstance(body, Signed), "utterance must be signed")
    _require(body.key == subject.key, "utterance signed with the wrong key")
    _require(says.time.is_point, "utterance must be at a point time")
    _require(
        membership.time.covers(says.time.lo),
        "membership does not cover the utterance time",
    )
    _require(
        speaks.time.covers(says.time.lo),
        "key binding does not cover the utterance time",
    )
    return Says(membership.group, says.time, body.body)


def a36_compound_group_says(membership: SpeaksForGroup, says: Says) -> Says:
    """A36: compound-principal membership: ``CP => G``, ``CP says X``."""
    _require(
        isinstance(membership, SpeaksForGroup), "first premise must be membership"
    )
    subject = membership.subject
    _require(
        isinstance(subject, CompoundPrincipal),
        "A36 applies to compound-principal membership",
    )
    _require(isinstance(says, Says), "second premise must be says")
    _require(says.subject == subject, "speaker is not the member compound")
    _require(says.time.is_point, "utterance must be at a point time")
    _require(
        membership.time.covers(says.time.lo),
        "membership does not cover the utterance time",
    )
    return Says(membership.group, says.time, says.body)


def a37_keybound_compound_group_says(
    membership: SpeaksForGroup, speaks: KeySpeaksFor, says: Says
) -> Says:
    """A37: ``CP|K => G``, ``K => CP``, and ``CP says <X>_{K^-1}`` give
    ``G says X`` — the shared-public-key group-membership variant
    (Section 2.2's alternate mechanism)."""
    from .terms import KeyBoundCompound

    _require(
        isinstance(membership, SpeaksForGroup), "first premise must be membership"
    )
    subject = membership.subject
    _require(
        isinstance(subject, KeyBoundCompound),
        "A37 applies to key-bound compound membership CP|K",
    )
    _require(isinstance(speaks, KeySpeaksFor), "second premise must be K => CP")
    _require(speaks.key == subject.key, "evidence names a different key")
    speaks_subject = speaks.subject
    if isinstance(speaks_subject, ThresholdPrincipal):
        speaks_subject = speaks_subject.base
    _require(
        speaks_subject == subject.compound,
        "key bound to a different compound principal",
    )
    _require(isinstance(says, Says), "third premise must be says")
    _require(says.subject == subject.compound, "speaker is not the compound")
    body = says.body
    _require(isinstance(body, Signed), "utterance must be signed")
    _require(body.key == subject.key, "utterance signed with the wrong key")
    _require(says.time.is_point, "utterance must be at a point time")
    _require(
        membership.time.covers(says.time.lo),
        "membership does not cover the utterance time",
    )
    _require(
        speaks.time.covers(says.time.lo),
        "key binding does not cover the utterance time",
    )
    return Says(membership.group, says.time, body.body)


def a38_threshold_group_says(
    membership: SpeaksForGroup, member_says: Sequence[Says]
) -> Says:
    """A38: threshold membership ``CP_{m,n} => G`` plus m members saying
    ``<X>_{K_i^-1}`` (each with its bound key) gives ``G says X``.

    This is the axiom that approves joint access requests: the write of
    Figure 2(b) supplies two of the three subjects' signed requests.
    """
    _require(
        isinstance(membership, SpeaksForGroup), "first premise must be membership"
    )
    subject = membership.subject
    _require(
        isinstance(subject, ThresholdPrincipal),
        "A38 applies to threshold membership CP_{m,n}",
    )
    _require(
        len(member_says) >= subject.m,
        f"need {subject.m} member utterances, got {len(member_says)}",
    )
    bound_by_name = {}
    for member in subject.base.members:
        _require(
            isinstance(member, KeyBoundPrincipal),
            "threshold membership subjects must be key-bound (CP = {P_i|K_i})",
        )
        bound_by_name[member.principal] = member.key

    common_body: Optional[object] = None
    common_time: Optional[int] = None
    seen: List[Principal] = []
    for says in member_says:
        _require(isinstance(says, Says), "member premises must be says")
        speaker = says.subject
        _require(speaker in bound_by_name, f"{speaker} is not a subject of the AC")
        _require(speaker not in seen, f"duplicate utterance by {speaker}")
        seen.append(speaker)
        body = says.body
        _require(isinstance(body, Signed), "member utterances must be signed")
        _require(
            body.key == bound_by_name[speaker],
            f"{speaker} signed with a key other than its bound key",
        )
        _require(says.time.is_point, "utterances must be at point times")
        _require(
            membership.time.covers(says.time.lo),
            "membership does not cover an utterance time",
        )
        # Members sign "P_i says_t X"; the shared request is the inner X
        # (statements 11-13 of the paper's derivation chain).
        core = body.body
        if isinstance(core, Says) and core.subject == speaker:
            core = core.body
        if common_body is None:
            common_body = core
            common_time = says.time.lo
        else:
            _require(core == common_body, "members signed different requests")
            common_time = max(common_time, says.time.lo)
    return Says(membership.group, Temporal.point(common_time), common_body)
