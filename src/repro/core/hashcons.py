"""Hash-consing support for the immutable AST.

Every term, temporal annotation, message and formula node is a frozen
dataclass, and the belief store, pattern matcher and proof machinery all
key on them constantly.  The dataclass-generated ``__hash__`` re-walks
the whole subtree on every call, which dominates dictionary lookups once
formulas get deep (a threshold attribute certificate's idealization is
~8 levels of nesting).

:func:`cached_hash` wraps a frozen dataclass so the structural hash is
computed once, on first use, and memoized on the instance.  Child nodes
memoize too, so hashing a deep tree is amortized O(1) after the first
walk instead of O(tree) per lookup.

:func:`interned` builds a memoizing constructor for leaf-ish nodes
(principals, groups, key references, point times) so hot paths that
rebuild the same leaves per request share one instance — equality
checks then short-circuit on identity.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Type, TypeVar

__all__ = ["cached_hash", "interned"]

T = TypeVar("T")

_SENTINEL = object()


def cached_hash(cls: Type[T]) -> Type[T]:
    """Class decorator: memoize the dataclass-generated structural hash.

    Apply *after* ``@dataclass(frozen=True)`` so the generated hash
    (which agrees with ``__eq__``) is the one being cached.  The cache
    slot lives in the instance ``__dict__`` and is written with
    ``object.__setattr__`` to bypass the frozen guard.
    """
    base_hash = cls.__hash__
    if base_hash is None:  # pragma: no cover - misuse guard
        raise TypeError(f"{cls.__name__} is unhashable; nothing to cache")

    def __hash__(self: object) -> int:
        h = self.__dict__.get("_structural_hash", _SENTINEL)
        if h is _SENTINEL:
            h = base_hash(self)
            object.__setattr__(self, "_structural_hash", h)
        return h

    cls.__hash__ = __hash__  # type: ignore[assignment]
    return cls


def interned(constructor: Callable[..., T], maxsize: int = 65536) -> Callable[..., T]:
    """A memoizing wrapper for a node constructor.

    Suitable only for constructors whose arguments are hashable and
    fully determine the node (true for all our frozen AST classes).
    """
    return lru_cache(maxsize=maxsize)(constructor)
