"""The formula language of the logic (F1-F22 of Appendix A).

Every formula is an immutable AST node.  The temporal subscript of each
modality is a :class:`repro.core.temporal.Temporal`; the subject of a
modality may be a simple or compound principal (the paper's F4-F7 pairs
of rules collapse here because both satisfy the same interface).

Formula nodes double as messages (M1), so certificates -- which are
*signed formulas* -- compose naturally: an idealized identity certificate
is ``Signed(Says(CA, t_CA, KeySpeaksFor(K_P, [tb,te], P)), K_CA)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .hashcons import cached_hash
from .messages import Message
from .temporal import Temporal
from .terms import Group, KeyRef, Subject, Var

__all__ = [
    "Formula",
    "Believes",
    "Controls",
    "Says",
    "Said",
    "Received",
    "Has",
    "KeySpeaksFor",
    "SpeaksForGroup",
    "Fresh",
    "At",
    "Not",
    "And",
    "Implies",
    "TimeLe",
    "TRUE",
]


class Formula:
    """Abstract base for all formula nodes (gives a shared isinstance)."""

    __slots__ = ()


@cached_hash
@dataclass(frozen=True)
class Believes(Formula):
    """``P believes_t phi`` (F4/F5)."""

    subject: object  # Principal | CompoundPrincipal | Var
    time: Temporal
    body: "FormulaOrMessage"

    def __str__(self) -> str:
        return f"{self.subject} believes_{self.time} ({self.body})"


@cached_hash
@dataclass(frozen=True)
class Controls(Formula):
    """``P controls_t phi`` (F4/F5): jurisdiction over a formula."""

    subject: object
    time: Temporal
    body: "FormulaOrMessage"

    def __str__(self) -> str:
        return f"{self.subject} controls_{self.time} ({self.body})"


@cached_hash
@dataclass(frozen=True)
class Says(Formula):
    """``P says_t X`` (F6/F7): an utterance at its origination time."""

    subject: object
    time: Temporal
    body: Message

    def __str__(self) -> str:
        return f"{self.subject} says_{self.time} ({self.body})"


@cached_hash
@dataclass(frozen=True)
class Said(Formula):
    """``P said_t X`` (F6/F7): said at or before t."""

    subject: object
    time: Temporal
    body: Message

    def __str__(self) -> str:
        return f"{self.subject} said_{self.time} ({self.body})"


@cached_hash
@dataclass(frozen=True)
class Received(Formula):
    """``P received_t X`` (F6/F7)."""

    subject: object
    time: Temporal
    body: Message

    def __str__(self) -> str:
        return f"{self.subject} received_{self.time} ({self.body})"


@cached_hash
@dataclass(frozen=True)
class Has(Formula):
    """``P has_t K`` (F11): possession of a key."""

    subject: object
    time: Temporal
    key: KeyRef

    def __str__(self) -> str:
        return f"{self.subject} has_{self.time} {self.key}"


@cached_hash
@dataclass(frozen=True)
class KeySpeaksFor(Formula):
    """``K =>_t S`` (F8/F9/F10): public key K speaks for subject S.

    ``S`` ranges over simple principals, compound principals, and
    threshold compound principals ``CP_{m,n}`` (where m of the n share
    holders may sign on the compound principal's behalf).
    """

    key: Union[KeyRef, Var]
    time: Temporal
    subject: Subject

    def __str__(self) -> str:
        return f"{self.key} =>_{self.time} {self.subject}"


@cached_hash
@dataclass(frozen=True)
class SpeaksForGroup(Formula):
    """``S =>_t G`` (F12-F16): subject S is a member of / speaks for G.

    The subject encodes which variant of the paper's F12-F16 applies:
    ``Principal`` (F12), ``KeyBoundPrincipal`` P|K (F13),
    ``CompoundPrincipal`` (F14), ``ThresholdPrincipal`` CP_{m,n} (F15),
    and a key-bound compound CP|K is a CompoundPrincipal wrapped in
    KeyBoundGroupSubject below (F16).
    """

    subject: Subject
    time: Temporal
    group: Union[Group, Var]

    def __str__(self) -> str:
        return f"{self.subject} =>_{self.time} {self.group}"


@cached_hash
@dataclass(frozen=True)
class Fresh(Formula):
    """``fresh_{t,P} X`` (F17/F18): X not said before, as judged by P."""

    message: Message
    time: Temporal

    def __str__(self) -> str:
        return f"fresh_{self.time} ({self.message})"


@cached_hash
@dataclass(frozen=True)
class At(Formula):
    """``phi at_P t`` (F19/F20): phi held at P at local time t."""

    body: "FormulaOrMessage"
    place: object  # Principal | CompoundPrincipal
    time: Temporal

    def __str__(self) -> str:
        return f"({self.body}) at_{self.place} {self.time}"


@cached_hash
@dataclass(frozen=True)
class Not(Formula):
    """Negation; revocation certificates carry negated membership."""

    body: "FormulaOrMessage"

    def __str__(self) -> str:
        return f"not({self.body})"


@cached_hash
@dataclass(frozen=True)
class And(Formula):
    left: "FormulaOrMessage"
    right: "FormulaOrMessage"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@cached_hash
@dataclass(frozen=True)
class Implies(Formula):
    antecedent: "FormulaOrMessage"
    consequent: "FormulaOrMessage"

    def __str__(self) -> str:
        return f"({self.antecedent} -> {self.consequent})"


@cached_hash
@dataclass(frozen=True)
class TimeLe(Formula):
    """``t1 <= t2`` (F3)."""

    left: int
    right: int

    def __str__(self) -> str:
        return f"{self.left} <= {self.right}"


@cached_hash
@dataclass(frozen=True)
class _Truth(Formula):
    def __str__(self) -> str:
        return "true"


TRUE = _Truth()

FormulaOrMessage = Union[Formula, Message]
