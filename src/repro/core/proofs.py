"""Proof objects: every derived belief carries a machine-checkable trace.

A :class:`ProofStep` records the concluded formula, the axiom (by its
paper name, e.g. "A10", "A22", "A38"), and the premise steps.  The
authorization protocol returns the full tree with each access decision,
so a decision can be audited exactly against the derivation printed in
Appendix E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

__all__ = ["ProofStep", "render_proof"]


@dataclass(frozen=True)
class ProofStep:
    """One node of a derivation tree."""

    conclusion: object  # a Formula
    rule: str  # axiom or rule name: "premise", "A10", "A22", ...
    premises: Tuple["ProofStep", ...] = ()
    note: str = ""

    def axioms_used(self) -> List[str]:
        """All axiom names appearing in the tree, outermost first."""
        seen: List[str] = []
        for step in self.walk():
            if step.rule not in seen:
                seen.append(step.rule)
        return seen

    def axiom_counts(self) -> Dict[str, int]:
        """Rule name -> number of applications in this tree.

        Feeds decision traces (:mod:`repro.obs.trace`): the derivation
        span records which axioms fired and how often, so an ``explain``
        of a grant shows the Appendix E chain without shipping the
        whole proof tree.
        """
        counts: Dict[str, int] = {}
        for step in self.walk():
            counts[step.rule] = counts.get(step.rule, 0) + 1
        return counts

    def walk(self) -> Iterator["ProofStep"]:
        """Pre-order traversal of the proof tree.

        Iterative on an explicit stack: ``yield from`` recursion costs
        O(depth) generator frames per yielded node, which dominated the
        request hot path (``size()`` on every decision, ``axiom_counts``
        on every traced decision) for the paper's ~10-deep proofs.
        """
        stack = [self]
        while stack:
            step = stack.pop()
            yield step
            stack.extend(reversed(step.premises))

    def depth(self) -> int:
        if not self.premises:
            return 1
        return 1 + max(p.depth() for p in self.premises)

    def size(self) -> int:
        return sum(1 for _ in self.walk())


def render_proof(step: ProofStep, indent: int = 0) -> str:
    """Human-readable rendering of a proof tree."""
    pad = "  " * indent
    note = f"  -- {step.note}" if step.note else ""
    lines = [f"{pad}[{step.rule}] {step.conclusion}{note}"]
    for premise in step.premises:
        lines.append(render_proof(premise, indent + 1))
    return "\n".join(lines)
