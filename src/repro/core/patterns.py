"""Pattern matching for axiom schemas and quantified initial beliefs.

The paper's initial beliefs quantify over groups, principals and times --
e.g. statement 2: ``P believes (forall t) AA controls (forall G', CP',
t'b, t'e) CP' => [t'b, t'e] G'``.  We represent such beliefs as formulas
containing :class:`~repro.core.terms.Var` placeholders plus temporal
wildcards, and the derivation engine instantiates them by unification
against concrete formulas.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Optional, Tuple

from .hashcons import cached_hash
from .temporal import Temporal
from .terms import Var

__all__ = ["AnyTime", "AnyTimeFrom", "match", "substitute", "Bindings"]

Bindings = Dict[str, object]


@cached_hash
@dataclass(frozen=True)
class AnyTime:
    """Temporal wildcard: matches any temporal annotation (``forall t``).

    An optional name records the binding for later substitution.
    """

    name: str = ""

    def __str__(self) -> str:
        return f"?t{('_' + self.name) if self.name else ''}"


@cached_hash
@dataclass(frozen=True)
class AnyTimeFrom:
    """Temporal wildcard matching annotations lying entirely at/after ``lo``.

    Encodes the paper's ``forall t >= t*`` quantifications.
    """

    lo: int
    name: str = ""

    def __str__(self) -> str:
        return f"?t>={self.lo}"


def _bind(bindings: Bindings, name: str, value: object) -> Optional[Bindings]:
    """Extend bindings consistently; None on conflict."""
    if name in bindings:
        return bindings if bindings[name] == value else None
    out = dict(bindings)
    out[name] = value
    return out


@lru_cache(maxsize=None)
def _compare_field_names(cls: type) -> Optional[Tuple[str, ...]]:
    """The comparable field names of a dataclass, or None for non-dataclasses.

    ``dataclasses.fields`` rebuilds the tuple on every call; caching it
    per class keeps the hot matching loop allocation-free.  Cosmetic
    fields (``compare=False``, e.g. key labels) are excluded.
    """
    if not dataclasses.is_dataclass(cls):
        return None
    return tuple(f.name for f in dataclasses.fields(cls) if f.compare)


def match(
    schema: object, concrete: object, bindings: Optional[Bindings] = None
) -> Optional[Bindings]:
    """Unify ``schema`` (may contain Var/AnyTime) against ``concrete``.

    Returns the (possibly extended) bindings on success, None on failure.
    ``concrete`` must be ground; variables only occur on the schema side.
    """
    if bindings is None:
        bindings = {}

    # Early exit on head mismatch: unless the schema side is a wildcard,
    # differing node classes can never unify, and this check is by far
    # the most common outcome when scanning candidate beliefs.
    scls = schema.__class__
    if scls is not concrete.__class__ and not issubclass(
        scls, (Var, AnyTime, AnyTimeFrom)
    ):
        return None

    if scls is Var or isinstance(schema, Var):
        return _bind(bindings, schema.name, concrete)
    if isinstance(schema, AnyTime):
        if not isinstance(concrete, Temporal):
            return None
        if schema.name:
            return _bind(bindings, schema.name, concrete)
        return bindings
    if isinstance(schema, AnyTimeFrom):
        if not isinstance(concrete, Temporal):
            return None
        if concrete.lo < schema.lo:
            return None
        if schema.name:
            return _bind(bindings, schema.name, concrete)
        return bindings

    field_names = _compare_field_names(scls)
    if field_names is not None:
        for name in field_names:
            sub = match(
                getattr(schema, name), getattr(concrete, name), bindings
            )
            if sub is None:
                return None
            bindings = sub
        return bindings

    if isinstance(schema, tuple):
        if len(schema) != len(concrete):
            return None
        for s_item, c_item in zip(schema, concrete):
            sub = match(s_item, c_item, bindings)
            if sub is None:
                return None
            bindings = sub
        return bindings

    if isinstance(schema, frozenset):
        # Unordered matching is exponential in general; our schemas never
        # put variables inside frozensets, so equality suffices.
        return bindings if schema == concrete else None

    return bindings if schema == concrete else None


def substitute(schema: object, bindings: Bindings) -> object:
    """Replace Var/named-AnyTime occurrences in ``schema`` per ``bindings``."""
    if isinstance(schema, Var):
        return bindings.get(schema.name, schema)
    if isinstance(schema, (AnyTime, AnyTimeFrom)):
        if schema.name and schema.name in bindings:
            return bindings[schema.name]
        return schema
    if dataclasses.is_dataclass(schema) and not isinstance(schema, type):
        changes = {
            f.name: substitute(getattr(schema, f.name), bindings)
            for f in dataclasses.fields(schema)
        }
        return dataclasses.replace(schema, **changes)
    if isinstance(schema, tuple):
        return tuple(substitute(item, bindings) for item in schema)
    return schema
