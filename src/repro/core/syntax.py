"""A concrete text syntax for the logic: render and parse formulas.

The paper writes formulas like ``CA1 says_tCA1 (K_u =>_[tb,te] User_D1)``;
this module defines an unambiguous ASCII form for the whole language,
with a renderer (:func:`to_text`) and a recursive-descent parser
(:func:`parse_formula`) that round-trip:

======================  =========================================
construct               syntax
======================  =========================================
principal               ``User_D1``
key reference           ``#a1b2c3`` (fingerprint after ``#``)
group                   ``@G_write``
key-bound principal     ``User_D1|#a1b2c3``
compound principal      ``{D1, D2, D3}``
threshold compound      ``{U1|#k1, U2|#k2, U3|#k3}%2``
key-bound compound      ``{U1, U2}|#k``
point time              ``says:5``; clock: ``says:5^ServerP``
closed interval         ``[1,100]``; ``*`` is the open-ended bound
some-interval           ``<1,100>``
data constant           ``"write O"``
signed message          ``sig(X, #k)``
encrypted message       ``enc(X, #k)``
tuple                   ``tuple(X, Y)``
modalities              ``P says:t X``, ``said``, ``received``,
                        ``believes``, ``controls``, ``has``
key speaks-for          ``#k =>:t P``
group membership        ``P =>:t @G``
location                ``at(phi, P, t)``
freshness               ``fresh:t(X)``
negation/connectives    ``not(phi)``, ``and(phi, psi)``,
                        ``implies(phi, psi)``
======================  =========================================
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .formulas import (
    And,
    At,
    Believes,
    Controls,
    Fresh,
    Has,
    Implies,
    KeySpeaksFor,
    Not,
    Received,
    Said,
    Says,
    SpeaksForGroup,
)
from .messages import Data, Encrypted, MessageTuple, Signed
from .temporal import FOREVER, Temporal, TemporalKind
from .terms import (
    CompoundPrincipal,
    Group,
    KeyBoundCompound,
    KeyBoundPrincipal,
    KeyRef,
    Principal,
)

__all__ = ["to_text", "parse_formula", "SyntaxError_"]


class SyntaxError_(Exception):
    """The input is not a well-formed formula text."""


_MODALITIES = {
    "says": Says,
    "said": Said,
    "received": Received,
    "believes": Believes,
    "controls": Controls,
    "has": Has,
}

# ---------------------------------------------------------------- render


def _render_time(t: Temporal) -> str:
    def bound(v: int) -> str:
        return "*" if v >= FOREVER else str(v)

    if t.kind is TemporalKind.POINT:
        core = bound(t.lo)
    elif t.kind is TemporalKind.ALL:
        core = f"[{bound(t.lo)},{bound(t.hi)}]"
    else:
        core = f"<{bound(t.lo)},{bound(t.hi)}>"
    if t.clock is not None:
        core += f"^{_render_subject(t.clock)}"
    return core


def _render_subject(subject: object) -> str:
    if isinstance(subject, Principal):
        return subject.name
    if isinstance(subject, Group):
        return f"@{subject.name}"
    if isinstance(subject, KeyRef):
        return f"#{subject.key_id}"
    if isinstance(subject, KeyBoundPrincipal):
        return f"{subject.principal.name}|#{subject.key.key_id}"
    if isinstance(subject, CompoundPrincipal):
        inner = ", ".join(_render_subject(m) for m in subject.members)
        return "{" + inner + "}"
    if isinstance(subject, KeyBoundCompound):
        return f"{_render_subject(subject.compound)}|#{subject.key.key_id}"
    from .terms import ThresholdPrincipal

    if isinstance(subject, ThresholdPrincipal):
        return f"{_render_subject(subject.base)}%{subject.m}"
    raise SyntaxError_(f"cannot render subject {subject!r}")


def to_text(node: object) -> str:
    """Render a formula or message to its concrete syntax."""
    if isinstance(node, Data):
        escaped = node.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(node, Signed):
        return f"sig({to_text(node.body)}, #{node.key.key_id})"
    if isinstance(node, Encrypted):
        return f"enc({to_text(node.body)}, #{node.key.key_id})"
    if isinstance(node, MessageTuple):
        inner = ", ".join(to_text(p) for p in node.parts)
        return f"tuple({inner})"
    if isinstance(node, Not):
        return f"not({to_text(node.body)})"
    if isinstance(node, And):
        return f"and({to_text(node.left)}, {to_text(node.right)})"
    if isinstance(node, Implies):
        return f"implies({to_text(node.antecedent)}, {to_text(node.consequent)})"
    if isinstance(node, At):
        return (
            f"at({to_text(node.body)}, {_render_subject(node.place)}, "
            f"{_render_time(node.time)})"
        )
    if isinstance(node, Fresh):
        return f"fresh:{_render_time(node.time)}({to_text(node.message)})"
    if isinstance(node, KeySpeaksFor):
        return (
            f"#{node.key.key_id} =>:{_render_time(node.time)} "
            f"{_render_subject(node.subject)}"
        )
    if isinstance(node, SpeaksForGroup):
        return (
            f"{_render_subject(node.subject)} =>:{_render_time(node.time)} "
            f"{_render_subject(node.group)}"
        )
    for keyword, cls in _MODALITIES.items():
        if isinstance(node, cls):
            body = node.key if isinstance(node, Has) else node.body
            rendered = (
                f"#{body.key_id}" if isinstance(body, KeyRef) else to_text(body)
            )
            return (
                f"{_render_subject(node.subject)} {keyword}:"
                f"{_render_time(node.time)} ({rendered})"
            )
    # Plain terms used as messages.
    return _render_subject(node)


# ----------------------------------------------------------------- lexer

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<arrow>=>)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<keyid>\#[A-Za-z0-9_\-]+)
  | (?P<group>@[A-Za-z_][A-Za-z0-9_\-]*)
  | (?P<sym>[(){}\[\]<>,|%^*:])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise SyntaxError_(f"unexpected character {text[pos]!r} at {pos}")
        kind = match.lastgroup
        value = match.group()
        pos = match.end()
        if kind != "ws":
            tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------- token utils

    def peek(self) -> Tuple[str, str]:
        return self._tokens[self._index]

    def next(self) -> Tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        token_kind, token_value = self.next()
        if token_kind != kind or (value is not None and token_value != value):
            raise SyntaxError_(
                f"expected {value or kind}, got {token_value!r}"
            )
        return token_value

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[str]:
        token_kind, token_value = self.peek()
        if token_kind == kind and (value is None or token_value == value):
            self.next()
            return token_value
        return None

    # ---------------------------------------------------------- grammar

    def parse(self) -> object:
        node = self.parse_node()
        self.expect("eof")
        return node

    def parse_node(self) -> object:
        kind, value = self.peek()
        if kind == "string":
            self.next()
            raw = value[1:-1]
            return Data(raw.replace('\\"', '"').replace("\\\\", "\\"))
        if kind == "name" and value in ("sig", "enc", "tuple", "not", "and",
                                        "implies", "at", "fresh"):
            return self._parse_call(value)
        if kind == "keyid":
            # A key expression: either "#k =>_t S" or a bare key term.
            key = self._parse_keyref()
            if self.accept("arrow") is not None:
                self.expect("sym", ":")
                time = self._parse_time()
                subject = self._parse_subject()
                return KeySpeaksFor(key, time, subject)
            return key
        if kind == "sym" and value == "(":
            self.next()
            inner = self.parse_node()
            self.expect("sym", ")")
            return inner
        # Otherwise: a subject followed by a modality or membership arrow.
        subject = self._parse_subject()
        kind, value = self.peek()
        if kind == "arrow":
            self.next()
            self.expect("sym", ":")
            time = self._parse_time()
            group = self._parse_subject()
            if not isinstance(group, Group):
                raise SyntaxError_("membership target must be a @group")
            return SpeaksForGroup(subject, time, group)
        if kind == "name" and value in _MODALITIES:
            keyword = self.next()[1]
            self.expect("sym", ":")
            time = self._parse_time()
            self.expect("sym", "(")
            body = self.parse_node()
            self.expect("sym", ")")
            cls = _MODALITIES[keyword]
            if cls is Has:
                if not isinstance(body, KeyRef):
                    raise SyntaxError_("has takes a key reference")
                return Has(subject, time, body)
            return cls(subject, time, body)
        return subject  # a bare term used as a message

    def _parse_call(self, keyword: str) -> object:
        self.expect("name", keyword)
        if keyword == "fresh":
            self.expect("sym", ":")
            time = self._parse_time()
            self.expect("sym", "(")
            message = self.parse_node()
            self.expect("sym", ")")
            return Fresh(message, time)
        self.expect("sym", "(")
        if keyword in ("sig", "enc"):
            body = self.parse_node()
            self.expect("sym", ",")
            key = self._parse_keyref()
            self.expect("sym", ")")
            return (Signed if keyword == "sig" else Encrypted)(body, key)
        if keyword == "tuple":
            parts = [self.parse_node()]
            while self.accept("sym", ","):
                parts.append(self.parse_node())
            self.expect("sym", ")")
            return MessageTuple(tuple(parts))
        if keyword == "not":
            body = self.parse_node()
            self.expect("sym", ")")
            return Not(body)
        if keyword in ("and", "implies"):
            left = self.parse_node()
            self.expect("sym", ",")
            right = self.parse_node()
            self.expect("sym", ")")
            return And(left, right) if keyword == "and" else Implies(left, right)
        if keyword == "at":
            body = self.parse_node()
            self.expect("sym", ",")
            place = self._parse_subject()
            self.expect("sym", ",")
            time = self._parse_time()
            self.expect("sym", ")")
            return At(body, place, time)
        raise SyntaxError_(f"unknown call {keyword!r}")  # pragma: no cover

    def _parse_keyref(self) -> KeyRef:
        value = self.expect("keyid")
        return KeyRef(value[1:])

    def _parse_subject(self) -> object:
        kind, value = self.peek()
        if kind == "group":
            self.next()
            return Group(value[1:])
        if kind == "sym" and value == "{":
            return self._parse_compound()
        if kind == "name":
            self.next()
            principal = Principal(value)
            if self.accept("sym", "|"):
                key = self._parse_keyref()
                return KeyBoundPrincipal(principal, key)
            return principal
        raise SyntaxError_(f"expected a subject, got {value!r}")

    def _parse_compound(self) -> object:
        self.expect("sym", "{")
        members = [self._parse_subject()]
        while self.accept("sym", ","):
            members.append(self._parse_subject())
        self.expect("sym", "}")
        compound = CompoundPrincipal.of(members)
        if self.accept("sym", "%"):
            m = int(self.expect("int"))
            return compound.threshold(m)
        if self.accept("sym", "|"):
            key = self._parse_keyref()
            return KeyBoundCompound(compound, key)
        return compound

    def _parse_time(self) -> Temporal:
        kind, value = self.peek()

        def parse_bound() -> int:
            if self.accept("sym", "*") is not None:
                return FOREVER
            return int(self.expect("int"))

        if kind == "sym" and value == "[":
            self.next()
            lo = parse_bound()
            self.expect("sym", ",")
            hi = parse_bound()
            self.expect("sym", "]")
            temporal = Temporal.all(lo, hi)
        elif kind == "sym" and value == "<":
            self.next()
            lo = parse_bound()
            self.expect("sym", ",")
            hi = parse_bound()
            self.expect("sym", ">")
            temporal = Temporal.some(lo, hi)
        else:
            temporal = Temporal.point(parse_bound())
        if self.accept("sym", "^"):
            clock = self._parse_subject()
            temporal = temporal.on_clock(clock)
        return temporal


def parse_formula(text: str) -> object:
    """Parse the concrete syntax into formula/message objects."""
    return _Parser(_tokenize(text)).parse()
