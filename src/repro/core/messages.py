"""Messages of the logic (set M_Gamma of Appendix A).

Messages are built by mutual induction with formulas: every formula is a
message (M1), primitive terms are messages (M2), and function images --
in particular signed messages ``<X>_{K^-1}`` and encrypted messages
``{X}_K`` -- are messages (M3).  Tuples model multi-part messages such as
the joint write request of Figure 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .hashcons import cached_hash
from .terms import KeyRef

__all__ = ["Data", "Signed", "Encrypted", "MessageTuple", "Message", "submessages"]


@cached_hash
@dataclass(frozen=True)
class Data:
    """An uninterpreted data constant, e.g. '"write" O' or a nonce."""

    value: str

    def __str__(self) -> str:
        return self.value


@cached_hash
@dataclass(frozen=True)
class Signed:
    """``<X>_{K^-1}``: message X signed with the private half of key K."""

    body: "Message"
    key: KeyRef

    def __str__(self) -> str:
        return f"<{self.body}>_{self.key}^-1"


@cached_hash
@dataclass(frozen=True)
class Encrypted:
    """``{X}_K``: message X encrypted under public key K."""

    body: "Message"
    key: KeyRef

    def __str__(self) -> str:
        return f"{{{self.body}}}_{self.key}"


@cached_hash
@dataclass(frozen=True)
class MessageTuple:
    """An ordered tuple of messages, e.g. a joint access request."""

    parts: Tuple["Message", ...]

    def __str__(self) -> str:
        return "(" + ", ".join(str(p) for p in self.parts) + ")"


# A message is a formula, a data constant, or a crypto/function image.
# Formula is imported lazily to avoid the circular definition; the union
# is structural: anything with these types is accepted by the axioms.
Message = Union[Data, Signed, Encrypted, MessageTuple, "Formula"]  # noqa: F821


def submessages(message: "Message", keys: frozenset = frozenset()) -> set:
    """The submsgs_K(M) closure of Appendix C.

    Messages derivable from ``message`` by splitting tuples, stripping
    signatures (readable with or without the verification key), and
    decrypting with private keys in ``keys`` (a set of KeyRef whose
    private halves are held).
    """
    out = {message}
    if isinstance(message, MessageTuple):
        for part in message.parts:
            out |= submessages(part, keys)
    elif isinstance(message, Signed):
        out |= submessages(message.body, keys)
    elif isinstance(message, Encrypted):
        if message.key in keys:
            out |= submessages(message.body, keys)
    else:
        # Formulas: include the body of At annotations (Appendix C d).
        body = getattr(message, "body", None)
        if body is not None and type(message).__name__ == "At":
            out |= submessages(body, keys)
    return out
