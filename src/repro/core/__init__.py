"""The paper's access-control logic: terms, formulas, axioms, derivation.

The public surface mirrors the paper's Appendices A and B:

* :mod:`~repro.core.terms` — principals, compound/threshold principals,
  key references, groups (the term set Gamma);
* :mod:`~repro.core.temporal` — point/interval temporal subscripts;
* :mod:`~repro.core.messages` — signed/encrypted/tuple messages;
* :mod:`~repro.core.formulas` — the formula language F1-F22;
* :mod:`~repro.core.axioms` — axiom schemas A1-A38 as pure functions;
* :mod:`~repro.core.derivation` — the engine a verifier runs, producing
  proof trees citing axioms by their paper names.
"""

from .axioms import AxiomError
from .checker import ProofChecker, ProofCheckError, check_proof
from .derivation import DerivationEngine, DerivationError
from .formulas import (
    And,
    At,
    Believes,
    Controls,
    Formula,
    Fresh,
    Has,
    Implies,
    KeySpeaksFor,
    Not,
    Received,
    Said,
    Says,
    SpeaksForGroup,
    TimeLe,
    TRUE,
)
from .messages import Data, Encrypted, MessageTuple, Signed, submessages
from .patterns import AnyTime, AnyTimeFrom, match, substitute
from .proofs import ProofStep, render_proof
from .store import BeliefStore
from .syntax import parse_formula, to_text
from .temporal import FOREVER, Temporal, TemporalKind, at, during, sometime
from .terms import (
    CompoundPrincipal,
    Group,
    KeyBoundCompound,
    KeyBoundPrincipal,
    KeyRef,
    Principal,
    ThresholdPrincipal,
    Var,
    is_ground,
)

__all__ = [
    "AxiomError",
    "ProofChecker",
    "ProofCheckError",
    "check_proof",
    "KeyBoundCompound",
    "DerivationEngine",
    "DerivationError",
    "And",
    "At",
    "Believes",
    "Controls",
    "Formula",
    "Fresh",
    "Has",
    "Implies",
    "KeySpeaksFor",
    "Not",
    "Received",
    "Said",
    "Says",
    "SpeaksForGroup",
    "TimeLe",
    "TRUE",
    "Data",
    "Encrypted",
    "MessageTuple",
    "Signed",
    "submessages",
    "AnyTime",
    "AnyTimeFrom",
    "match",
    "substitute",
    "ProofStep",
    "render_proof",
    "BeliefStore",
    "parse_formula",
    "to_text",
    "FOREVER",
    "Temporal",
    "TemporalKind",
    "at",
    "during",
    "sometime",
    "CompoundPrincipal",
    "Group",
    "KeyBoundPrincipal",
    "KeyRef",
    "Principal",
    "ThresholdPrincipal",
    "Var",
    "is_ground",
]
