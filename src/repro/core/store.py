"""A principal's belief store.

Holds every formula the principal currently believes, each paired with
the proof step that produced it.  Supports pattern queries (used to find
jurisdiction schemas and key bindings) and negative-belief tracking for
revocation ("believe until revoked", Section 4.3).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .formulas import Formula, Not
from .patterns import Bindings, match
from .proofs import ProofStep

__all__ = ["BeliefStore"]


class BeliefStore:
    """An insertion-ordered map from believed formula to its proof."""

    def __init__(self) -> None:
        self._beliefs: Dict[Formula, ProofStep] = {}

    def __len__(self) -> int:
        return len(self._beliefs)

    def __contains__(self, formula: Formula) -> bool:
        return formula in self._beliefs

    def __iter__(self) -> Iterator[Formula]:
        return iter(self._beliefs)

    def add(self, proof: ProofStep) -> ProofStep:
        """Record a proved formula; keeps the first proof of a formula."""
        existing = self._beliefs.get(proof.conclusion)
        if existing is not None:
            return existing
        self._beliefs[proof.conclusion] = proof
        return proof

    def add_premise(self, formula: Formula, note: str = "") -> ProofStep:
        """Record an initial belief (an axiom of this principal's state)."""
        return self.add(ProofStep(conclusion=formula, rule="premise", note=note))

    def proof_of(self, formula: Formula) -> Optional[ProofStep]:
        return self._beliefs.get(formula)

    def query(
        self, schema: object
    ) -> List[Tuple[Formula, Bindings, ProofStep]]:
        """All beliefs unifying with ``schema`` (with their bindings)."""
        results = []
        for formula, proof in self._beliefs.items():
            bindings = match(schema, formula)
            if bindings is not None:
                results.append((formula, bindings, proof))
        return results

    def first(
        self, schema: object
    ) -> Optional[Tuple[Formula, Bindings, ProofStep]]:
        """The first belief unifying with ``schema``, if any."""
        for formula, proof in self._beliefs.items():
            bindings = match(schema, formula)
            if bindings is not None:
                return formula, bindings, proof
        return None

    def negations_of(self, schema: object) -> List[Tuple[Formula, ProofStep]]:
        """Beliefs of the form ``not(phi)`` whose phi unifies with schema.

        Used for believe-until-revoked: a revocation certificate plants
        ``not(CP_{m,n} => G)`` in the verifier's store, and membership
        queries consult these before trusting a cached certificate.
        """
        results = []
        for formula, proof in self._beliefs.items():
            if not isinstance(formula, Not):
                continue
            if match(schema, formula.body) is not None:
                results.append((formula, proof))
        return results

    def snapshot(self) -> List[Formula]:
        """The current belief set (insertion order), for tests and audit."""
        return list(self._beliefs)
