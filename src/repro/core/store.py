"""A principal's belief store.

Holds every formula the principal currently believes, each paired with
the proof step that produced it.  Supports pattern queries (used to find
jurisdiction schemas and key bindings) and negative-belief tracking for
revocation ("believe until revoked", Section 4.3).

Queries are served from a **discrimination index** rather than a linear
scan: every belief is bucketed by its head constructor (``KeySpeaksFor``,
``Controls``, ``Not(SpeaksForGroup)``, ...) and a secondary key on the
formula's ground subject/key/group slot.  Beliefs whose secondary slot
contains pattern variables (schema-shaped beliefs, e.g. the jurisdiction
statements of Appendix E) land in a per-head wildcard bucket that every
probe of that head also visits.  A query whose own head is indeterminate
(a bare ``Var`` schema) falls back to the full scan.

The index is a pure pre-filter: candidate beliefs still go through the
structural :func:`~repro.core.patterns.match`, so results are exactly
those of the naive scan, in insertion order (each entry carries its
insertion sequence number and merged candidate lists are sorted by it).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .formulas import (
    At,
    Believes,
    Controls,
    Formula,
    Has,
    KeySpeaksFor,
    Not,
    Received,
    Said,
    Says,
    SpeaksForGroup,
)
from .patterns import AnyTime, AnyTimeFrom, Bindings, match
from .proofs import ProofStep
from .terms import is_ground

__all__ = ["BeliefStore"]


# The field holding each head constructor's natural discrimination key.
# Heads not listed here (And, Implies, TimeLe, Fresh, ...) are bucketed
# by head alone.
_SECONDARY_FIELD: Dict[type, str] = {
    Believes: "subject",
    Controls: "subject",
    Says: "subject",
    Said: "subject",
    Received: "subject",
    Has: "subject",
    KeySpeaksFor: "key",
    SpeaksForGroup: "group",
    At: "place",
}

# Secondary bucket for beliefs whose key slot contains pattern variables.
_WILDCARD = "*"

_Entry = Tuple[int, Formula, ProofStep]


def _belief_key(formula: object) -> Tuple[object, object]:
    """(head, secondary) bucket key for a stored belief.

    ``Not`` nests: ``Not(S => G)`` lands under ``("Not", SpeaksForGroup)``
    with the inner formula's secondary, so revocation lookups touch only
    negations of the right shape.
    """
    cls = formula.__class__
    if cls is Not:
        inner_head, inner_sec = _belief_key(formula.body)
        return ("Not", inner_head), inner_sec
    field = _SECONDARY_FIELD.get(cls)
    if field is None:
        return cls, None
    secondary = getattr(formula, field)
    if not is_ground(secondary):
        return cls, _WILDCARD
    return cls, secondary


def _schema_key(schema: object) -> Optional[Tuple[object, object]]:
    """(head, secondary-or-None-for-any) for a query schema.

    Returns None when the schema's head is indeterminate (a ``Var`` or a
    non-formula object), which forces a full scan.  A ``None`` secondary
    means "all secondary buckets of this head".
    """
    cls = schema.__class__
    if not isinstance(schema, Formula):
        return None
    if cls is Not:
        inner = _schema_key(schema.body)
        if inner is None:
            return None
        inner_head, inner_sec = inner
        return ("Not", inner_head), inner_sec
    field = _SECONDARY_FIELD.get(cls)
    if field is None:
        return cls, None
    secondary = getattr(schema, field)
    if isinstance(secondary, (AnyTime, AnyTimeFrom)) or not is_ground(secondary):
        return cls, None
    return cls, secondary


class BeliefStore:
    """An insertion-ordered map from believed formula to its proof."""

    def __init__(self) -> None:
        self._beliefs: Dict[Formula, ProofStep] = {}
        # head -> secondary -> entries, each entry (seq, formula, proof).
        self._index: Dict[object, Dict[object, List[_Entry]]] = {}
        self._next_seq = 0
        # Bucket keys whose entry lists are shared with a fork (see
        # :meth:`fork`); such a bucket is copied before its first append.
        self._cow_buckets: set = set()
        # Observability counters, surfaced via DerivationEngine.stats()
        # and the unified registry (repro.obs.metrics).
        self.metrics = MetricsRegistry("store")
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        """Cache metric handles so hot paths skip the name lookup."""
        self._stat_probes = self.metrics.counter("index_probes")
        self._stat_full_scans = self.metrics.counter("full_scans")
        self._stat_candidates = self.metrics.counter("candidates_examined")
        self._gauge_beliefs = self.metrics.gauge("beliefs")
        self._gauge_buckets = self.metrics.gauge("index_buckets")

    def __len__(self) -> int:
        return len(self._beliefs)

    def __contains__(self, formula: Formula) -> bool:
        return formula in self._beliefs

    def __iter__(self) -> Iterator[Formula]:
        return iter(self._beliefs)

    def add(self, proof: ProofStep) -> ProofStep:
        """Record a proved formula; keeps the first proof of a formula."""
        formula = proof.conclusion
        existing = self._beliefs.get(formula)
        if existing is not None:
            return existing
        self._beliefs[formula] = proof
        head, secondary = _belief_key(formula)
        by_secondary = self._index.setdefault(head, {})
        bucket = by_secondary.get(secondary)
        if bucket is None:
            bucket = by_secondary[secondary] = []
        elif (head, secondary) in self._cow_buckets:
            # Copy-on-write: this entry list is shared with a fork.
            bucket = by_secondary[secondary] = list(bucket)
            self._cow_buckets.discard((head, secondary))
        bucket.append((self._next_seq, formula, proof))
        self._next_seq += 1
        return proof

    def add_premise(self, formula: Formula, note: str = "") -> ProofStep:
        """Record an initial belief (an axiom of this principal's state)."""
        return self.add(ProofStep(conclusion=formula, rule="premise", note=note))

    def proof_of(self, formula: Formula) -> Optional[ProofStep]:
        return self._beliefs.get(formula)

    # ------------------------------------------------------ index probes

    def _candidates(self, schema: object) -> List[_Entry]:
        """Index-ordered candidate beliefs for ``schema`` (superset of matches)."""
        key = _schema_key(schema)
        if key is None:
            self._stat_full_scans.inc()
            return [
                (seq, formula, proof)
                for seq, (formula, proof) in enumerate(self._beliefs.items())
            ]
        self._stat_probes.inc()
        head, secondary = key
        by_secondary = self._index.get(head)
        if not by_secondary:
            return []
        if secondary is None:
            buckets = list(by_secondary.values())
        else:
            buckets = [
                by_secondary.get(secondary, []),
                by_secondary.get(_WILDCARD, []),
            ]
        if len(buckets) == 1:
            return buckets[0]
        merged = [entry for bucket in buckets for entry in bucket]
        merged.sort(key=lambda entry: entry[0])  # global insertion order
        return merged

    # ----------------------------------------------------------- queries

    def query(
        self, schema: object
    ) -> List[Tuple[Formula, Bindings, ProofStep]]:
        """All beliefs unifying with ``schema`` (with their bindings)."""
        results = []
        for _seq, formula, proof in self._candidates(schema):
            self._stat_candidates.inc()
            bindings = match(schema, formula)
            if bindings is not None:
                results.append((formula, bindings, proof))
        return results

    def first(
        self, schema: object
    ) -> Optional[Tuple[Formula, Bindings, ProofStep]]:
        """The first belief unifying with ``schema``, if any."""
        for _seq, formula, proof in self._candidates(schema):
            self._stat_candidates.inc()
            bindings = match(schema, formula)
            if bindings is not None:
                return formula, bindings, proof
        return None

    def negations_of(self, schema: object) -> List[Tuple[Formula, ProofStep]]:
        """Beliefs of the form ``not(phi)`` whose phi unifies with schema.

        Used for believe-until-revoked: a revocation certificate plants
        ``not(CP_{m,n} => G)`` in the verifier's store, and membership
        queries consult these before trusting a cached certificate.
        """
        results = []
        for _seq, formula, proof in self._candidates(Not(schema)):
            self._stat_candidates.inc()
            if not isinstance(formula, Not):
                continue
            if match(schema, formula.body) is not None:
                results.append((formula, proof))
        return results

    def snapshot(self) -> List[Formula]:
        """The current belief set (insertion order), for tests and audit."""
        return list(self._beliefs)

    # -------------------------------------------------------------- forks

    def fork(self) -> "BeliefStore":
        """A cheap copy-on-write clone of this store.

        The clone observes exactly the beliefs present now and diverges
        independently afterwards: adds on either side never appear on
        the other.  The belief map is copied shallowly (pointer copy);
        index entry lists are *shared* and each side copies a bucket
        lazily before its first post-fork append, so a fork that is
        never written to costs O(buckets) rather than O(beliefs).

        This is the primitive behind epoch snapshots in
        :mod:`repro.service`: publishing a policy epoch forks every
        shard's store, applies the revocation to the fork, and swaps it
        in atomically, leaving in-flight evaluations on the old epoch
        untouched.
        """
        clone = BeliefStore.__new__(BeliefStore)
        clone._beliefs = dict(self._beliefs)
        clone._index = {
            head: dict(by_secondary) for head, by_secondary in self._index.items()
        }
        clone._next_seq = self._next_seq
        clone.metrics = self.metrics.fork()
        clone._bind_metrics()
        shared = {
            (head, secondary)
            for head, by_secondary in self._index.items()
            for secondary in by_secondary
        }
        clone._cow_buckets = set(shared)
        self._cow_buckets |= shared
        return clone

    # ------------------------------------------------------------- stats

    def stats(self) -> Dict[str, int]:
        """Index observability counters (cumulative since construction).

        A thin view over the unified metrics registry; the dict shape
        predates the registry and is kept stable for existing callers.
        """
        return {
            "beliefs": len(self._beliefs),
            "index_buckets": sum(len(v) for v in self._index.values()),
            "index_probes": self._stat_probes.value,
            "full_scans": self._stat_full_scans.value,
            "candidates_examined": self._stat_candidates.value,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Registry snapshot with size gauges refreshed."""
        self._gauge_beliefs.set(len(self._beliefs))
        self._gauge_buckets.set(sum(len(v) for v in self._index.values()))
        return self.metrics.snapshot()
