"""Temporal annotations of the logic.

Appendix A uses three flavours of time subscript on every modality:

* a point ``t``;
* a closed interval ``[t1, t2]`` — the formula holds at *every* time in
  the interval (certificate validity periods);
* an angle interval ``<t1, t2>`` — the formula holds at *some* time in
  the interval (the reduction axiom produces these).

Any annotation may additionally name the principal **on whose clock** the
time is measured (``t, P``).  Times are integers (ticks of a simulated
clock); different principals' clocks may disagree, which the sim layer
models with per-principal skews.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .hashcons import cached_hash

__all__ = [
    "TemporalKind",
    "Temporal",
    "at",
    "during",
    "sometime",
    "Time",
    "FOREVER",
]

Time = int

# Sentinel upper bound for open-ended validity ("for all t >= t*").
# Revocation certificates in the paper likewise carry an upper bound of
# infinity (footnote 2).
FOREVER: Time = 10**12


class TemporalKind(str, Enum):
    """Which flavour of temporal subscript."""

    POINT = "point"  # t
    ALL = "all"  # [t1, t2]
    SOME = "some"  # <t1, t2>


@cached_hash
@dataclass(frozen=True)
class Temporal:
    """A temporal subscript: kind, bounds, and an optional clock owner.

    For POINT annotations ``lo == hi``.
    """

    kind: TemporalKind
    lo: Time
    hi: Time
    clock: Optional[object] = None  # a Principal/CompoundPrincipal or None

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")
        if self.kind is TemporalKind.POINT and self.lo != self.hi:
            raise ValueError("point annotations need lo == hi")

    # -- constructors -------------------------------------------------
    @staticmethod
    def point(t: Time, clock: Optional[object] = None) -> "Temporal":
        return Temporal(TemporalKind.POINT, t, t, clock)

    @staticmethod
    def all(lo: Time, hi: Time, clock: Optional[object] = None) -> "Temporal":
        return Temporal(TemporalKind.ALL, lo, hi, clock)

    @staticmethod
    def some(lo: Time, hi: Time, clock: Optional[object] = None) -> "Temporal":
        return Temporal(TemporalKind.SOME, lo, hi, clock)

    # -- queries ------------------------------------------------------
    @property
    def is_point(self) -> bool:
        return self.kind is TemporalKind.POINT

    def covers(self, t: Time) -> bool:
        """True when a formula with this annotation is claimed at time t.

        POINT covers only its own instant; ALL covers the whole interval.
        SOME makes no per-instant claim, so it covers nothing.
        """
        if self.kind is TemporalKind.SOME:
            return False
        return self.lo <= t <= self.hi

    def covers_interval(self, lo: Time, hi: Time) -> bool:
        """True when every instant of [lo, hi] is covered."""
        if self.kind is TemporalKind.SOME:
            return False
        return self.lo <= lo and hi <= self.hi

    def on_clock(self, clock: object) -> "Temporal":
        """The same annotation measured on another principal's clock."""
        return Temporal(self.kind, self.lo, self.hi, clock)

    def without_clock(self) -> "Temporal":
        return Temporal(self.kind, self.lo, self.hi, None)

    def __str__(self) -> str:
        clock = f",{self.clock}" if self.clock is not None else ""
        if self.kind is TemporalKind.POINT:
            return f"{self.lo}{clock}"
        if self.kind is TemporalKind.ALL:
            return f"[{self.lo},{self.hi}]{clock}"
        return f"<{self.lo},{self.hi}>{clock}"


def at(t: Time, clock: Optional[object] = None) -> Temporal:
    """Shorthand for a point annotation."""
    return Temporal.point(t, clock)


def during(lo: Time, hi: Time, clock: Optional[object] = None) -> Temporal:
    """Shorthand for a closed ``[lo, hi]`` annotation."""
    return Temporal.all(lo, hi, clock)


def sometime(lo: Time, hi: Time, clock: Optional[object] = None) -> Temporal:
    """Shorthand for an existential ``<lo, hi>`` annotation."""
    return Temporal.some(lo, hi, clock)
