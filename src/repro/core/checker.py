"""Independent proof checking: re-validate a derivation without trust.

A :class:`ProofChecker` walks a :class:`~repro.core.proofs.ProofStep`
tree and re-applies the named axiom to the premise conclusions, checking
that each step's conclusion is actually derivable.  This lets a third
party (an auditor, another coalition server) verify an access decision
from its proof alone, given only the set of premises it is willing to
accept — the logic-level analogue of verifying a signature chain.

Premise acceptance is pluggable: by default, ``premise`` steps are
accepted if they appear in the checker's ``trusted_premises`` (e.g. the
auditor's own copy of statements 1-11 plus the message receipts it can
confirm); pass ``accept_all_premises=True`` to only check inference
structure.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from . import axioms
from .axioms import AxiomError
from .formulas import At, Controls, Formula, Said, Says
from .patterns import match
from .proofs import ProofStep
from .terms import Principal

__all__ = ["ProofCheckError", "ProofChecker", "check_proof"]


class ProofCheckError(Exception):
    """A proof step does not follow from its premises by its rule."""


class ProofChecker:
    """Re-validates proof trees step by step."""

    def __init__(
        self,
        trusted_premises: Optional[Iterable[Formula]] = None,
        accept_all_premises: bool = False,
        aliases: Optional[dict] = None,
    ):
        self.trusted_premises: Set[Formula] = set(trusted_premises or ())
        self.accept_all_premises = accept_all_premises
        # authority Principal -> implementing CompoundPrincipal, the
        # inverse of the engine's alias map ("AA is implemented by CP").
        self.aliases = dict(aliases or {})
        self.steps_checked = 0

    # ------------------------------------------------------------ public

    def check(self, proof: ProofStep) -> bool:
        """Validate the whole tree; raises ProofCheckError on failure."""
        for premise in proof.premises:
            self.check(premise)
        self._check_step(proof)
        return True

    # ------------------------------------------------------------ steps

    def _check_step(self, step: ProofStep) -> None:
        self.steps_checked += 1
        handler = getattr(self, f"_rule_{step.rule.replace('/', '_').lower()}", None)
        if handler is None:
            raise ProofCheckError(f"unknown rule {step.rule!r}")
        try:
            handler(step)
        except AxiomError as exc:
            raise ProofCheckError(
                f"step [{step.rule}] {step.conclusion} does not follow: {exc}"
            ) from exc

    # Each rule handler confirms: conclusion == axiom(premise conclusions).

    def _rule_premise(self, step: ProofStep) -> None:
        if step.premises:
            raise ProofCheckError("premise steps must be leaves")
        if self.accept_all_premises:
            return
        if step.conclusion not in self.trusted_premises:
            raise ProofCheckError(
                f"untrusted premise: {step.conclusion}"
            )

    def _rule_inst(self, step: ProofStep) -> None:
        # Universal instantiation: the conclusion must unify with the
        # (schematic) premise.
        if len(step.premises) != 1:
            raise ProofCheckError("inst takes exactly one premise")
        schema = step.premises[0].conclusion
        if match(schema, step.conclusion) is None:
            raise ProofCheckError(
                "instantiation is not an instance of its schema"
            )

    def _rule_a10(self, step: ProofStep) -> None:
        if len(step.premises) != 2:
            raise ProofCheckError("A10 takes (key binding, receipt)")
        speaks, received = (p.conclusion for p in step.premises)
        said_body, said_signed = axioms.a10_originator_identification(
            speaks, received
        )
        candidates = {said_body, said_signed}
        # Alias rewriting: the compound principal implements the authority.
        conclusion = step.conclusion
        if isinstance(conclusion, Said) and isinstance(
            conclusion.subject, Principal
        ):
            compound = self.aliases.get(conclusion.subject)
            if compound is not None:
                candidates |= {
                    Said(conclusion.subject, said_body.time, said_body.body),
                    Said(conclusion.subject, said_signed.time, said_signed.body),
                }
        if conclusion not in candidates:
            raise ProofCheckError("A10 conclusion mismatch")

    def _rule_a19(self, step: ProofStep) -> None:
        if len(step.premises) != 1:
            raise ProofCheckError("A19 takes one premise")
        said = step.premises[0].conclusion
        conclusion = step.conclusion
        if not isinstance(conclusion, Says):
            raise ProofCheckError("A19 concludes a says formula")
        rebuilt = axioms.a19_said_to_says(said, conclusion.time.lo)
        if rebuilt != conclusion:
            raise ProofCheckError("A19 conclusion mismatch")

    def _rule_a9(self, step: ProofStep) -> None:
        # The engine uses A9 (with A3) to strip a verifier-located At.
        if len(step.premises) != 1:
            raise ProofCheckError("A9 takes one premise")
        located = step.premises[0].conclusion
        if not isinstance(located, At):
            raise ProofCheckError("A9 premise must be an at-formula")
        if located.body != step.conclusion:
            raise ProofCheckError("A9 must strip exactly the location")

    def _check_jurisdiction(self, step: ProofStep) -> None:
        if len(step.premises) != 2:
            raise ProofCheckError("jurisdiction takes (controls, utterance)")
        controls, says = (p.conclusion for p in step.premises)
        if not isinstance(controls, Controls) or not isinstance(says, Says):
            raise ProofCheckError("jurisdiction premises malformed")
        axioms.a22_jurisdiction(controls, says)
        conclusion = step.conclusion
        if not isinstance(conclusion, At) or conclusion.body != says.body:
            raise ProofCheckError("jurisdiction must locate the utterance body")

    # A22-A33 are all instances of the jurisdiction schema.
    _rule_a22 = _check_jurisdiction
    _rule_a23 = _check_jurisdiction
    _rule_a24 = _check_jurisdiction
    _rule_a25 = _check_jurisdiction
    _rule_a26 = _check_jurisdiction
    _rule_a27 = _check_jurisdiction
    _rule_a28 = _check_jurisdiction

    def _rule_a34(self, step: ProofStep) -> None:
        membership, says = (p.conclusion for p in step.premises)
        if axioms.a34_group_says(membership, says) != step.conclusion:
            raise ProofCheckError("A34 conclusion mismatch")

    def _rule_a35(self, step: ProofStep) -> None:
        if len(step.premises) != 3:
            raise ProofCheckError("A35 takes (membership, binding, says)")
        membership, binding, says = (p.conclusion for p in step.premises)
        if axioms.a35_keybound_group_says(membership, binding, says) != (
            step.conclusion
        ):
            raise ProofCheckError("A35 conclusion mismatch")

    def _rule_a36(self, step: ProofStep) -> None:
        membership, says = (p.conclusion for p in step.premises)
        if axioms.a36_compound_group_says(membership, says) != step.conclusion:
            raise ProofCheckError("A36 conclusion mismatch")

    def _rule_a37(self, step: ProofStep) -> None:
        if len(step.premises) != 3:
            raise ProofCheckError("A37 takes (membership, binding, says)")
        membership, binding, says = (p.conclusion for p in step.premises)
        if axioms.a37_keybound_compound_group_says(
            membership, binding, says
        ) != step.conclusion:
            raise ProofCheckError("A37 conclusion mismatch")

    def _rule_a38(self, step: ProofStep) -> None:
        if len(step.premises) < 2:
            raise ProofCheckError("A38 takes membership + member utterances")
        membership = step.premises[0].conclusion
        utterances = [p.conclusion for p in step.premises[1:]]
        if axioms.a38_threshold_group_says(membership, utterances) != (
            step.conclusion
        ):
            raise ProofCheckError("A38 conclusion mismatch")


def check_proof(
    proof: ProofStep,
    trusted_premises: Optional[Iterable[Formula]] = None,
    aliases: Optional[dict] = None,
) -> bool:
    """Convenience wrapper: validate ``proof`` against trusted premises.

    With no premises given, only the inference structure is checked.
    """
    checker = ProofChecker(
        trusted_premises=trusted_premises,
        accept_all_premises=trusted_premises is None,
        aliases=aliases,
    )
    return checker.check(proof)
