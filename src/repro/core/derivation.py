"""The derivation engine: a verifier principal's reasoning machinery.

A :class:`DerivationEngine` belongs to one verifier (e.g. coalition
server P).  Its belief store holds the verifier's initial beliefs
(statements 1-11 of Appendix E) and everything derived from received
messages.  The engine exposes exactly the inference moves the
authorization protocol needs; every conclusion carries a proof tree
citing the paper's axioms by name.

The three workhorse moves are:

* :meth:`admit_certificate` — the Step 1/Step 2 pipeline: originator
  identification (A10), timestamp jurisdiction (A22/A23 via statement
  3/5/7-style beliefs), reduction (A9/A3), then content jurisdiction
  (A22, whose membership instances are A24-A33) to believe the
  certificate's payload.
* :meth:`admit_signed_utterance` — A10 + A19 on a signed request part,
  yielding ``U says <X>_{K_u^-1}`` for use by A35/A38.
* :meth:`derive_group_says` — A34/A35/A36/A38 selection by membership
  subject shape, producing ``G says X``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from . import axioms
from .axioms import AxiomError
from .formulas import (
    At,
    Controls,
    Formula,
    KeySpeaksFor,
    Not,
    Received,
    Said,
    Says,
    SpeaksForGroup,
)
from .messages import Message, Signed
from .patterns import AnyTime, match, substitute
from .proofs import ProofStep
from .store import BeliefStore
from .temporal import Temporal
from .terms import (
    CompoundPrincipal,
    KeyBoundPrincipal,
    KeyRef,
    Principal,
    Subject,
    ThresholdPrincipal,
    Var,
)

__all__ = ["DerivationEngine", "DerivationError"]


class DerivationError(Exception):
    """A required derivation could not be completed.

    The message explains which premise was missing -- the authorization
    protocol surfaces this as the reason for an access denial.
    """


def _membership_axiom_name(subject: Subject) -> str:
    """The paper's axiom number for a membership-jurisdiction instance."""
    from .terms import KeyBoundCompound

    if isinstance(subject, ThresholdPrincipal):
        return "A28"
    if isinstance(subject, KeyBoundCompound):
        return "A27"
    if isinstance(subject, CompoundPrincipal):
        return "A25"
    if isinstance(subject, KeyBoundPrincipal):
        return "A26"
    return "A24"


class DerivationEngine:
    """Inference engine bound to one verifier principal."""

    def __init__(self, owner: Principal):
        self.owner = owner
        self.store = BeliefStore()
        # "For ease of reading we say that AA signs messages with KAA":
        # the compound principal holding the shares implements the
        # authority principal.  Registered aliases rewrite A10 originators.
        self._aliases: Dict[CompoundPrincipal, Principal] = {}
        self.metrics = MetricsRegistry("engine")
        self._steps_taken = self.metrics.counter("steps_taken")

    @property
    def steps_taken(self) -> int:
        return self._steps_taken.value

    # ------------------------------------------------------------ setup

    def believe(self, formula: Formula, note: str = "") -> ProofStep:
        """Install an initial belief (statements 1-11 of Appendix E)."""
        return self.store.add_premise(formula, note=note)

    def stats(self) -> Dict[str, int]:
        """Observability counters: derivation steps + belief-store index.

        Cumulative since engine construction; benchmarks assert cache
        wins on deltas of these rather than wall-clock.  A thin view
        over the unified metrics registries (see :mod:`repro.obs`).
        """
        return {"steps_taken": self.steps_taken, **self.store.stats()}

    def metrics_snapshot(self) -> Dict[str, object]:
        """Merged engine + store registry snapshot."""
        return MetricsRegistry.merge(
            [self.metrics.snapshot(), self.store.metrics_snapshot()]
        )

    def fork(self) -> "DerivationEngine":
        """A copy-on-write clone: same beliefs/aliases now, divergent after.

        Backs epoch snapshots (:mod:`repro.service`): the belief store
        forks lazily, aliases are copied shallowly, and the step counter
        carries over so per-request deltas stay meaningful.
        """
        clone = DerivationEngine.__new__(DerivationEngine)
        clone.owner = self.owner
        clone.store = self.store.fork()
        clone._aliases = dict(self._aliases)
        clone.metrics = self.metrics.fork()
        clone._steps_taken = clone.metrics.counter("steps_taken")
        return clone

    def register_alias(
        self, compound: CompoundPrincipal, authority: Principal
    ) -> None:
        """Declare that ``authority`` is implemented by ``compound``.

        Messages signed by the compound's shared key are treated as
        utterances of the authority (the paper's reading convention for
        the coalition AA).
        """
        self._aliases[compound] = authority

    def alias_map(self) -> Dict[Principal, CompoundPrincipal]:
        """Authority -> implementing compound (for proof checkers)."""
        return {auth: comp for comp, auth in self._aliases.items()}

    # --------------------------------------------------------- reception

    def receive(self, message: Message, at_time: int) -> ProofStep:
        """Record receipt of a message at the verifier's local time."""
        formula = Received(self.owner, Temporal.point(at_time, self.owner), message)
        return self.store.add_premise(formula, note="message receipt")

    # ------------------------------------------------------ basic lookups

    def find_key_binding(
        self, key: KeyRef, at_time: int
    ) -> Tuple[KeySpeaksFor, ProofStep]:
        """A believed ``K => S`` covering ``at_time``.

        Raises DerivationError when the verifier has no (unrevoked)
        binding for the key.
        """
        schema = KeySpeaksFor(key=key, time=AnyTime("t"), subject=Var("subject"))
        for formula, _bindings, proof in self.store.query(schema):
            if not formula.time.covers(at_time):
                continue
            if self._binding_revoked(formula, at_time):
                continue
            return formula, proof
        raise DerivationError(
            f"{self.owner} holds no key binding for {key} valid at {at_time}"
        )

    def _binding_revoked(self, binding: KeySpeaksFor, at_time: int) -> bool:
        """Believe-until-revoked check for key bindings.

        As with memberships, a binding stated at/after the revocation
        time (a re-issued identity certificate) supersedes it.
        """
        schema = KeySpeaksFor(
            key=binding.key, time=AnyTime("t"), subject=binding.subject
        )
        for negation, _proof in self.store.negations_of(schema):
            revoked_at = negation.body.time.lo
            if revoked_at <= at_time and binding.time.lo < revoked_at:
                return True
        return False

    # ------------------------------------------------- signed admissions

    def admit_signed_utterance(
        self, signed: Signed, received_at: int
    ) -> Tuple[ProofStep, ProofStep]:
        """A10 + A19 on a received signed message.

        Returns proofs of ``Q says_{t} X`` and ``Q says_{t} <X>_{K^-1}``
        where Q is the believed owner of the signing key (after alias
        rewriting for shared keys).
        """
        received_proof = self.receive(signed, received_at)
        binding, binding_proof = self.find_key_binding(signed.key, received_at)
        try:
            said_body, said_signed = axioms.a10_originator_identification(
                binding, received_proof.conclusion
            )
        except AxiomError as exc:
            raise DerivationError(f"A10 failed: {exc}") from exc
        self._steps_taken.inc()
        said_body, said_signed = self._rewrite_alias(said_body), self._rewrite_alias(
            said_signed
        )
        said_body_proof = self.store.add(
            ProofStep(said_body, "A10", (binding_proof, received_proof))
        )
        said_signed_proof = self.store.add(
            ProofStep(said_signed, "A10", (binding_proof, received_proof))
        )
        says_body = axioms.a19_said_to_says(said_body, received_at)
        says_signed = axioms.a19_said_to_says(said_signed, received_at)
        says_body_proof = self.store.add(
            ProofStep(says_body, "A19", (said_body_proof,))
        )
        says_signed_proof = self.store.add(
            ProofStep(says_signed, "A19", (said_signed_proof,))
        )
        return says_body_proof, says_signed_proof

    def _rewrite_alias(self, formula: Said) -> Said:
        subject = formula.subject
        if isinstance(subject, CompoundPrincipal) and subject in self._aliases:
            return Said(self._aliases[subject], formula.time, formula.body)
        return formula

    # ---------------------------------------------------- certificates

    def admit_certificate(self, signed_cert: Signed, received_at: int) -> ProofStep:
        """Believe the payload of a received idealized certificate.

        ``signed_cert.body`` must be ``Says(issuer, t_issue, payload)``.
        The chain mirrors Appendix E statements 6-10 / 12-16:

        1. A10 identifies the signer; an alias maps the share-holding
           compound principal to the issuing authority.
        2. A19 turns the utterance into a *says* premise.
        3. Timestamp jurisdiction (statement 3/5/7-style belief) + A23
           locates the certificate's content at the verifier; A9/A3
           strips the location.
        4. Content jurisdiction (statement 2/4/6-style belief) + A22
           (instances A24-A33 for membership payloads) yields the
           payload itself.

        Returns the proof of the payload.  Raises DerivationError when
        any required belief is missing or the payload is revoked.
        """
        inner = signed_cert.body
        if not isinstance(inner, Says):
            raise DerivationError(
                "certificate body must be an idealized 'issuer says' formula"
            )
        issuer = inner.subject

        says_body_proof, _says_signed_proof = self.admit_signed_utterance(
            signed_cert, received_at
        )
        says_inner = says_body_proof.conclusion
        if says_inner.subject != issuer:
            raise DerivationError(
                f"certificate signed by {says_inner.subject}, "
                f"but body claims issuer {issuer}"
            )

        # Step 3: timestamp jurisdiction over "issuer says_t_issue payload".
        located_proof = self._apply_jurisdiction(
            speaker=issuer,
            utterance=says_inner,
            target=inner,
            axiom_label="A23",
        )
        inner_proof = self._strip_location(located_proof)

        # Step 4: content jurisdiction over the payload itself.
        payload = inner.body
        axiom_label = (
            _membership_axiom_name(payload.subject)
            if isinstance(payload, SpeaksForGroup)
            else "A22"
        )
        payload_located = self._apply_jurisdiction(
            speaker=issuer,
            utterance=inner_proof.conclusion,
            target=payload,
            axiom_label=axiom_label,
        )
        return self._strip_location(payload_located)

    def _apply_jurisdiction(
        self,
        speaker: object,
        utterance: Says,
        target: Formula,
        axiom_label: str,
    ) -> ProofStep:
        """Find a controls-belief matching ``target`` and apply A22/A23.

        ``utterance`` must be a believed ``speaker says ...`` whose body
        is ``target`` (or the utterance *is* the says-formula being
        controlled, for timestamp jurisdiction).
        """
        utter_proof = self.store.proof_of(utterance)
        if utter_proof is None:
            raise DerivationError(f"no believed utterance {utterance}")
        if utterance.body != target:
            raise DerivationError(
                "jurisdiction target must be the utterance's content"
            )

        controls_schema = Controls(
            subject=speaker, time=AnyTime("jt"), body=Var("body")
        )
        for formula, _bindings, proof in self.store.query(controls_schema):
            inst_bindings = match(formula.body, target)
            if inst_bindings is None:
                continue
            instantiated = Controls(
                subject=formula.subject,
                time=formula.time,
                body=substitute(formula.body, inst_bindings),
            )
            inst_proof = self.store.add(
                ProofStep(
                    instantiated,
                    "inst",
                    (proof,),
                    note="universal instantiation of jurisdiction belief",
                )
            )
            try:
                axioms.a22_jurisdiction(instantiated, utterance)
            except AxiomError:
                continue
            self._steps_taken.inc()
            # Relocate at the verifier: the controls beliefs carry the
            # verifier's clock (the ",P" subscripts in the paper), so the
            # located formula sits at the verifier over <t*, t_utter>.
            located_here = At(
                target,
                self.owner,
                Temporal.some(
                    min(instantiated.time.lo, utterance.time.lo),
                    max(utterance.time.hi, utterance.time.lo),
                    self.owner,
                ),
            )
            return self.store.add(
                ProofStep(located_here, axiom_label, (inst_proof, utter_proof))
            )
        raise DerivationError(
            f"{self.owner} holds no jurisdiction belief of {speaker} "
            f"covering: {target}"
        )

    def _strip_location(self, located_proof: ProofStep) -> ProofStep:
        """A3/A9: ``phi at_me t`` believed here is ``phi`` believed here."""
        located = located_proof.conclusion
        if not isinstance(located, At) or located.place != self.owner:
            raise DerivationError("can only strip a location at the verifier")
        self._steps_taken.inc()
        return self.store.add(
            ProofStep(located.body, "A9", (located_proof,), note="A3/A9 reduction")
        )

    # --------------------------------------------------------- revocation

    def admit_revocation(self, signed_cert: Signed, received_at: int) -> ProofStep:
        """Believe a revocation: payload is ``not(membership)``.

        Mirrors the Message 2 chain of Section 4.3 (statements 7-10
        applied to a negated membership formula).
        """
        inner = signed_cert.body
        if not isinstance(inner, Says) or not isinstance(inner.body, Not):
            raise DerivationError("revocation body must be 'issuer says not(...)'")
        return self.admit_certificate(signed_cert, received_at)

    def membership_revoked(
        self,
        membership: SpeaksForGroup,
        at_time: int,
        stated_at: Optional[int] = None,
    ) -> Optional[ProofStep]:
        """The proof of a believed revocation defeating ``membership``.

        Believe-until-revoked: a revocation effective at ``r <= at_time``
        defeats any same-subject/group certificate *stated before* the
        revocation.  A certificate (re-)issued at or after the revocation
        time supersedes it — re-keying after coalition dynamics re-issues
        certificates this way.  ``stated_at`` defaults to the membership
        validity start when the issuance timestamp is unknown.
        """
        if stated_at is None:
            stated_at = membership.time.lo
        schema = SpeaksForGroup(
            subject=membership.subject, time=AnyTime("rt"), group=membership.group
        )
        for negation, proof in self.store.negations_of(schema):
            revoked_at = negation.body.time.lo
            if revoked_at <= at_time and stated_at < revoked_at:
                return proof
        return None

    # ----------------------------------------------------- group speaking

    def find_membership(
        self, group: object, at_time: int
    ) -> List[Tuple[SpeaksForGroup, ProofStep]]:
        """Believed, unrevoked memberships of ``group`` valid at ``at_time``."""
        schema = SpeaksForGroup(subject=Var("s"), time=AnyTime("t"), group=group)
        results = []
        for formula, _bindings, proof in self.store.query(schema):
            if not formula.time.covers(at_time):
                continue
            if self.membership_revoked(formula, at_time) is not None:
                continue
            results.append((formula, proof))
        return results

    def derive_group_says(
        self,
        membership_proof: ProofStep,
        utterance_proofs: Sequence[ProofStep],
    ) -> ProofStep:
        """Apply the right A34-A38 instance for the membership's subject.

        ``utterance_proofs`` are proofs of ``says`` formulas: one for
        A34/A35/A36, at least m (signed, key-bound) for A38.
        """
        membership = membership_proof.conclusion
        if not isinstance(membership, SpeaksForGroup):
            raise DerivationError("membership proof must conclude S => G")
        if not utterance_proofs:
            raise DerivationError(
                "group-says derivation needs at least one utterance proof "
                f"(none supplied for membership {membership})"
            )
        subject = membership.subject
        utterances = [p.conclusion for p in utterance_proofs]
        from .terms import KeyBoundCompound

        try:
            if isinstance(subject, ThresholdPrincipal):
                conclusion = axioms.a38_threshold_group_says(membership, utterances)
                rule = "A38"
            elif isinstance(subject, KeyBoundCompound):
                binding, binding_proof = self.find_key_binding(
                    subject.key, utterances[0].time.lo
                )
                conclusion = axioms.a37_keybound_compound_group_says(
                    membership, binding, utterances[0]
                )
                rule = "A37"
                utterance_proofs = [binding_proof, *utterance_proofs]
            elif isinstance(subject, CompoundPrincipal):
                conclusion = axioms.a36_compound_group_says(membership, utterances[0])
                rule = "A36"
            elif isinstance(subject, KeyBoundPrincipal):
                binding, binding_proof = self.find_key_binding(
                    subject.key, utterances[0].time.lo
                )
                conclusion = axioms.a35_keybound_group_says(
                    membership, binding, utterances[0]
                )
                rule = "A35"
                utterance_proofs = [binding_proof, *utterance_proofs]
            else:
                conclusion = axioms.a34_group_says(membership, utterances[0])
                rule = "A34"
        except AxiomError as exc:
            raise DerivationError(f"group-says derivation failed: {exc}") from exc
        self._steps_taken.inc()
        return self.store.add(
            ProofStep(conclusion, rule, (membership_proof, *utterance_proofs))
        )

    # ------------------------------------------------------- freshness

    def check_freshness(
        self, stated_at: int, received_at: int, window: int
    ) -> bool:
        """Recency check in the style of Stubblebine-Wright.

        A message whose origination timestamp is within ``window`` ticks
        of the local receive time is accepted as fresh (axiom A21 lifts
        component freshness to the composite message).
        """
        return received_at - window <= stated_at <= received_at + window
