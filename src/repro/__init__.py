"""Reproduction of Khurana, Gligor & Linn, "Reasoning about Joint
Administration of Access Policies for Coalition Resources" (ICDCS 2002).

Subpackages
-----------

``repro.core``
    The paper's access-control logic: terms, formulas, axioms A1-A38,
    and a derivation engine producing machine-checkable proof trees.
``repro.semantics``
    The run-based model of computation (Appendix C) and an executable
    soundness checker (Appendix D).
``repro.crypto``
    Threshold-RSA substrate: Boneh-Franklin dealerless shared key
    generation, joint signatures, Shoup m-of-n threshold signatures.
``repro.pki``
    Identity / attribute / threshold-attribute / revocation
    certificates, authorities, and directories.
``repro.coalition``
    The system of Figure 1: domains, the jointly controlled attribute
    authority, coalition server P, the Section 4.3 authorization
    protocol, and coalition dynamics.
``repro.sim``
    Simulated clocks and an adversarial message-passing network.
``repro.baselines``
    Case I (conventional key + hardware lockbox), unilateral
    administration, and SPKI-style comparison points.
``repro.analysis``
    Trust-liability, collusion, availability and dynamics-cost models
    backing the benchmark suite.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
