"""Command-line interface: run the paper's scenarios and experiments.

Usage (after ``pip install -e .``)::

    python -m repro.cli demo                # the Figure 1/2 scenario
    python -m repro.cli keygen -n 3 --bits 128 --dealerless
    python -m repro.cli liability --domains 2 3 5 8
    python -m repro.cli availability -n 5 -m 3
    python -m repro.cli dynamics --certs 1 5 15
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.coalition import (
        ACLEntry,
        Coalition,
        CoalitionServer,
        Domain,
        build_joint_request,
    )
    from repro.core.proofs import render_proof
    from repro.pki import ValidityPeriod

    domains = [Domain(f"D{i}", key_bits=args.bits) for i in (1, 2, 3)]
    users = [
        d.register_user(f"User_D{i}", now=0)
        for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition("cli-demo", key_bits=args.bits)
    coalition.form(domains)
    server = CoalitionServer("ServerP")
    coalition.attach_server(server)
    server.create_object(
        "ObjectO", b"cli demo object",
        [ACLEntry.of("G_write", ["write"]), ACLEntry.of("G_read", ["read"])],
        admin_group="G_admin",
    )
    tac = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", 1, ValidityPeriod(1, 1000)
    )
    request = build_joint_request(
        users[0], [users[1]], "write", "ObjectO", tac, now=2
    )
    result = server.handle_request(request, now=3, write_content=b"updated")
    print(f"joint write granted: {result.granted}")
    if args.proof and result.decision.proof is not None:
        print(render_proof(result.decision.proof))
    return 0 if result.granted else 1


def _cmd_keygen(args: argparse.Namespace) -> int:
    from repro.crypto.boneh_franklin import dealer_shared_rsa, generate_shared_rsa
    from repro.crypto.joint_signature import joint_sign

    start = time.perf_counter()
    if args.dealerless:
        result = generate_shared_rsa(args.n, bits=args.bits)
    else:
        result = dealer_shared_rsa(args.n, bits=args.bits)
    elapsed = time.perf_counter() - start
    print(
        f"{'dealerless' if args.dealerless else 'dealer'} shared RSA key: "
        f"N={result.public_key.bits} bits, {args.n} shares, "
        f"{result.candidate_rounds} candidate rounds, {elapsed:.2f}s"
    )
    start = time.perf_counter()
    signature = joint_sign(b"cli probe", result.shares, result.public_key)
    sign_elapsed = time.perf_counter() - start
    ok = result.public_key.verify(b"cli probe", signature)
    print(f"joint signature: {sign_elapsed*1000:.2f} ms, verifies={ok}")
    if sign_elapsed > 0:
        print(f"keygen/sign ratio: {elapsed / sign_elapsed:.0f}x")
    return 0


def _cmd_liability(args: argparse.Namespace) -> int:
    from repro.analysis.compromise import sweep_coalition_size

    results = sweep_coalition_size(args.domains, trials=args.trials)
    print(f"{'n':>3} {'CaseI':>10} {'CaseII':>12} {'ratio':>12}")
    for r in results:
        ratio = min(r.liability_ratio, 1e15)
        print(
            f"{r.model.n_domains:>3} {r.case1_analytic:>10.4f} "
            f"{r.case2_analytic:>12.2e} {ratio:>12.0f}"
        )
    return 0


def _cmd_availability(args: argparse.Namespace) -> int:
    from repro.analysis.availability import (
        m_of_n_availability,
        n_of_n_availability,
    )

    print(f"{'q':>6} {f'{args.n}-of-{args.n}':>10} {f'{args.m}-of-{args.n}':>10}")
    for q in (0.99, 0.95, 0.9, 0.8, 0.6):
        print(
            f"{q:>6} {n_of_n_availability(args.n, q):>10.4f} "
            f"{m_of_n_availability(args.n, args.m, q):>10.4f}"
        )
    return 0


def _cmd_dynamics(args: argparse.Namespace) -> int:
    from repro.coalition import Coalition, Domain
    from repro.pki import ValidityPeriod

    print(f"{'certs':>6} {'revoked':>8} {'reissued':>9} {'total ops':>10}")
    for n_certs in args.certs:
        domains = [Domain(f"D{i}-{n_certs}", key_bits=256) for i in (1, 2, 3)]
        users = [
            d.register_user(f"u{i}", now=0)
            for i, d in enumerate(domains, start=1)
        ]
        coalition = Coalition(f"cli-dyn-{n_certs}", key_bits=256)
        coalition.form(domains)
        for k in range(n_certs):
            coalition.authority.issue_threshold_certificate(
                users, 2, f"G{k}", 0, ValidityPeriod(0, 10**6)
            )
        report = coalition.join(Domain(f"DX-{n_certs}", key_bits=256), now=1)
        print(
            f"{n_certs:>6} {report.certificates_revoked:>8} "
            f"{report.certificates_reissued:>9} {report.total_operations():>10}"
        )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """E14: drive the sharded service and print the scaling table."""
    import json

    from repro.service.loadgen import (
        LoadgenConfig,
        run_loadgen,
        run_socket_loadgen,
        sequential_baseline,
    )

    def config_for(num_shards: int, queue_depth: int) -> LoadgenConfig:
        return LoadgenConfig(
            num_shards=num_shards,
            queue_depth=queue_depth,
            total_requests=args.requests,
            arrival_rate=args.rate,
            batch_size=args.batch,
            read_fraction=args.read_fraction,
            revoke_every=args.revoke_every,
            num_objects=args.objects,
            key_bits=args.bits,
            mode=args.mode,
            seed=args.seed,
            socket_clients=args.socket_clients,
            socket_loop=args.socket_loop,
            churn_every=args.churn_every,
        )

    run = run_socket_loadgen if args.transport == "socket" else run_loadgen
    reports = []
    baseline = sequential_baseline(config_for(1, args.queue_depth))
    reports.append(("sequential", baseline))
    for num_shards in args.shards:
        report = run(config_for(num_shards, args.queue_depth))
        reports.append((f"shards={num_shards}", report))
    if args.overdrive:
        report = run(config_for(max(args.shards), args.overdrive))
        reports.append((f"overdrive(depth={args.overdrive})", report))

    if args.json:
        print(
            json.dumps(
                [{"name": name, **r.as_dict()} for name, r in reports],
                indent=2,
            )
        )
        return 0
    print(
        f"{'run':>20} {'rps':>8} {'arps':>8} {'p50ms':>8} {'p95ms':>8} "
        f"{'p99ms':>8} {'granted':>8} {'denied':>7} {'shed':>5} {'epochs':>7}"
    )
    for name, r in reports:
        print(
            f"{name:>20} {r.throughput_rps:>8.1f} {r.achieved_rps:>8.1f} "
            f"{r.p50_ms:>8.2f} {r.p95_ms:>8.2f} {r.p99_ms:>8.2f} "
            f"{r.granted:>8} {r.denied:>7} {r.overloaded:>5} "
            f"{r.epochs_published:>7}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the asyncio network edge in front of a demo coalition.

    Builds the loadgen fixture (3 domains, read/write threshold
    certificates, ``--objects`` registered objects), starts the edge on
    ``--host``/``--port`` and serves until SIGTERM/SIGINT, then drains
    gracefully: stop accepting, flush in-flight tickets, close the
    service.  ``--client-bundle`` exports the signing material a
    separate-process client (``edge-smoke``, a socket loadgen) needs to
    produce requests this server will grant; ``--port-file`` writes the
    bound port for scripts that passed ``--port 0``.
    """
    import signal
    import threading

    from repro.service.edge import serve_in_thread
    from repro.service.loadgen import LoadgenConfig, build_fixture
    from repro.service.wire import ClientBundle

    config = LoadgenConfig(
        num_shards=args.shards,
        queue_depth=args.queue_depth,
        num_objects=args.objects,
        key_bits=args.bits,
        mode=args.mode,
        seed=args.seed,
    )
    fixture = build_fixture(config)
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal handler shape
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        handle = serve_in_thread(
            fixture.service, host=args.host, port=args.port
        )
        if args.client_bundle:
            ClientBundle(
                users=fixture.users,
                read_cert=fixture.read_cert,
                write_cert=fixture.write_cert,
                object_names=fixture.object_names,
            ).save(args.client_bundle)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as handle_file:
                handle_file.write(str(handle.port))
        print(
            f"edge listening on {handle.host}:{handle.port} "
            f"({args.shards} shards, mode={args.mode})",
            flush=True,
        )
        stop.wait()
        print("draining edge…", flush=True)
        drained = handle.shutdown(timeout=args.drain_timeout)
        stats = handle.stats()
        print(
            f"drained={drained} connections={stats['connections_total']} "
            f"responses={stats['responses_out']} batches={stats['batches']}",
            flush=True,
        )
        return 0 if drained else 1
    finally:
        fixture.service.close()


def _cmd_edge_smoke(args: argparse.Namespace) -> int:
    """Drive a running ``serve`` edge from a separate process.

    Loads the ``--bundle`` the server exported, checks healthz/readyz,
    then sends ``--requests`` signed authorize frames closed-loop and
    verifies every response is a typed decision frame.  Exit 0 iff the
    probes are green and every request got a granted decision.
    """
    from repro.coalition import build_joint_request
    from repro.service.wire import ClientBundle, EdgeClient

    bundle = ClientBundle.load(args.bundle)
    with EdgeClient(args.host, args.port, timeout=args.timeout) as client:
        health = client.healthz()
        ready = client.readyz()
        print(
            f"healthz={health['status']} readyz={ready['status']} "
            f"shards={health['report']['total_shards']}",
            flush=True,
        )
        if health["status"] != 200 or ready["status"] != 200:
            return 1
        granted = other = 0
        for i in range(args.requests):
            obj = bundle.object_names[i % len(bundle.object_names)]
            if i % 2 == 0:
                request = build_joint_request(
                    bundle.users[0], [], "read", obj,
                    bundle.read_cert, now=i + 1, nonce=f"smoke-r-{i}",
                )
            else:
                request = build_joint_request(
                    bundle.users[0], [bundle.users[1]], "write", obj,
                    bundle.write_cert, now=i + 1, nonce=f"smoke-w-{i}",
                )
            response = client.authorize(request, now=i + 1, req_id=i)
            if (
                response.get("kind") == "decision"
                and response["decision"]["granted"]
            ):
                granted += 1
            else:
                other += 1
    print(f"smoke: {granted} granted, {other} other", flush=True)
    return 0 if granted == args.requests else 1


def _traced_demo_service(bits: int):
    """A demo coalition fronted by a tracing, audited service.

    Shared by ``explain`` and ``metrics``: three domains, one object
    with read/write groups, and an inline-mode
    :class:`~repro.service.AuthorizationService` with tracing on and a
    hash-chained audit log attached.
    """
    from repro.coalition import ACLEntry, AuditLog, Coalition, Domain
    from repro.pki import ValidityPeriod
    from repro.service import AuthorizationService

    domains = [Domain(f"D{i}", key_bits=bits) for i in (1, 2, 3)]
    users = [
        d.register_user(f"User_D{i}", now=0)
        for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition("cli-explain", key_bits=bits)
    coalition.form(domains)
    service = AuthorizationService(
        name="ServiceP",
        num_shards=2,
        mode="inline",
        tracing=True,
        audit_log=AuditLog(key_bits=bits),
    )
    coalition.attach_server(service)
    service.register_object(
        "ObjectO",
        [ACLEntry.of("G_write", ["write"]), ACLEntry.of("G_read", ["read"])],
        admin_group="G_admin",
    )
    tac = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", 1, ValidityPeriod(1, 1000)
    )
    return coalition, users, service, tac


def _cmd_explain(args: argparse.Namespace) -> int:
    """Replay one joint request with tracing on and render the trace.

    Shows the full decision path — admission, queue wait, epoch pin,
    derivation (with the axiom names that fired), audit append — plus
    the proof tree, and verifies the audit chain that recorded it.
    """
    import json

    from repro.coalition import build_joint_request
    from repro.core.proofs import render_proof
    from repro.obs.trace import render_span

    coalition, users, service, tac = _traced_demo_service(args.bits)
    try:
        request = build_joint_request(
            users[0], [users[1]], "write", "ObjectO", tac, now=2
        )
        ticket = service.submit(request, now=3)
        decision = ticket.result()
        trace = service.tracer.find_trace(ticket.trace_id)
        assert trace is not None
        if args.json:
            print(json.dumps(trace.to_dict(), indent=2, sort_keys=True))
            return 0 if decision.granted else 1
        print(f"decision: {'GRANTED' if decision.granted else 'DENIED'}")
        print(f"reason:   {decision.reason}")
        print(f"trace:    {ticket.trace_id}")
        print()
        print(render_span(trace))
        if decision.proof is not None:
            print()
            print("proof tree:")
            print(render_proof(decision.proof))
        audit = service.audit_log
        audit.verify(expected_length=len(audit))
        entry = audit.entries()[-1]
        print()
        print(
            f"audit: chain of {len(audit)} verified; entry "
            f"#{entry.sequence} carries trace_id={entry.trace_id}"
        )
        return 0 if decision.granted else 1
    finally:
        service.close()


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run a short traffic sample and print the merged metrics snapshot."""
    import json

    from repro.obs.metrics import validate_snapshot
    from repro.service.loadgen import LoadgenConfig, build_fixture, run_loadgen

    config = LoadgenConfig(
        num_shards=args.shards,
        total_requests=args.requests,
        key_bits=args.bits,
        mode="threaded",
        tracing=args.tracing,
        seed=args.seed,
    )
    fixture = build_fixture(config)
    try:
        run_loadgen(config, fixture)
        snapshot = fixture.service.metrics_snapshot()
        validate_snapshot(snapshot)
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    finally:
        fixture.service.close()


def _cmd_health(args: argparse.Namespace) -> int:
    """Run a traffic sample (optionally under chaos), print the probes.

    Exit code is the readiness verdict: 0 when every shard is ready for
    new traffic, 1 otherwise — so the subcommand doubles as a scriptable
    health check.  ``--chaos-*`` flags inject deterministic faults to
    demonstrate supervised degradation (E16).
    """
    import json

    from repro.service.loadgen import LoadgenConfig, build_fixture, run_loadgen

    config = LoadgenConfig(
        num_shards=args.shards,
        total_requests=args.requests,
        key_bits=args.bits,
        mode="threaded",
        seed=args.seed,
        queue_depth=args.queue_depth,
        chaos_raise_every=args.chaos_raise_every,
        chaos_kill_shard=args.kill_shard,
        chaos_kill_after=args.kill_after,
        restart_backoff_s=0.01,
    )
    fixture = build_fixture(config)
    try:
        report = run_loadgen(config, fixture)
        probe = fixture.service.health()
        if args.json:
            print(json.dumps(probe, indent=2, sort_keys=True))
        else:
            live = probe["liveness"]
            ready = probe["readiness"]
            print(
                f"liveness:  live={live['live']} "
                f"workers_alive={live['workers_alive']}/{live['total_shards']} "
                f"supervisor_alive={live['supervisor_alive']}"
            )
            print(
                f"readiness: ready={ready['ready']} "
                f"degraded={ready['degraded']} "
                f"ready_shards={ready['ready_shards']}/{ready['total_shards']}"
            )
            print(
                f"traffic:   evaluated={report.evaluated} "
                f"errored={report.errored} overloaded={report.overloaded} "
                f"crashes={report.worker_crashes} "
                f"restarts={report.worker_restarts} "
                f"stranded={report.stranded}"
            )
            print(
                f"{'shard':>5} {'alive':>6} {'breaker':>8} {'crashes':>8} "
                f"{'restarts':>9} {'queue':>6} {'staleness':>10} {'ready':>6}"
            )
            for s in probe["shards"]:
                print(
                    f"{s['shard']:>5} {str(s['worker_alive']):>6} "
                    f"{s['breaker']:>8} {s['crashes']:>8} {s['restarts']:>9} "
                    f"{s['queue_depth']:>6} {s['epoch_staleness']:>10} "
                    f"{str(s['ready']):>6}"
                )
        return 0 if probe["readiness"]["ready"] else 1
    finally:
        fixture.service.close()


def _cmd_replay(args: argparse.Namespace) -> int:
    """Record a WAL-backed workload and/or replay one deterministically.

    ``--record`` drives a fresh manifest-described workload into
    ``--wal-dir`` (optionally tearing the tail afterwards with
    ``--truncate-tail`` to simulate a crash).  Without ``--record`` the
    directory must already hold a WAL; it is recovered (torn tail
    healed), the manifest stored in its META record regenerates the
    workload in a scratch service, and every recovered entry is
    compared byte-for-byte against its replayed twin.  Exit code 0 iff
    the chain verifies and every entry (and epoch record) matches.
    """
    import json
    import os

    from repro.storage.replay import ReplayManifest, replay_wal, run_scenario

    manifest = ReplayManifest(
        total_requests=args.requests,
        num_shards=args.shards,
        num_objects=args.objects,
        read_fraction=args.read_fraction,
        deny_fraction=args.deny_fraction,
        revoke_every=args.revoke_every,
        key_bits=args.bits,
        seed=args.seed,
    )
    if args.record:
        result = run_scenario(manifest, args.wal_dir)
        if not args.json:
            print(
                f"recorded {len(result.entries)} decisions "
                f"({result.granted} granted, {result.denied} denied, "
                f"{result.revocations_published} revocations) into "
                f"{args.wal_dir}"
            )
        if args.truncate_tail > 0:
            from repro.storage.wal import list_segments

            last = list_segments(args.wal_dir)[-1]
            size = os.path.getsize(last)
            cut = max(0, size - args.truncate_tail)
            with open(last, "ab") as handle:
                handle.truncate(cut)
            if not args.json:
                print(
                    f"tore the tail: truncated {os.path.basename(last)} "
                    f"from {size} to {cut} bytes"
                )

    report = replay_wal(args.wal_dir)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(
            f"recovered {report.recovered_entries} entries "
            f"(+{report.recovered_epoch_records} epoch records), "
            f"chain verified: {report.chain_verified}"
        )
        if report.torn:
            print(
                f"healed torn tail: {report.torn_reason} "
                f"({report.truncated_bytes} bytes dropped, "
                f"{report.quarantined_segments} segment(s) quarantined)"
            )
        print(
            f"replayed {report.replayed_entries} decisions; byte parity: "
            f"{'OK' if report.entries_matched else f'MISMATCH at entry {report.mismatch_index}'}"
            f", epoch records: "
            f"{'OK' if report.epoch_records_matched else 'MISMATCH'}"
        )
    return 0 if report.ok else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    """List or run named coalition-life scenarios (DESIGN.md §15).

    Each scenario replays a seeded program of membership churn,
    traffic mixes, adversaries and chaos against a live service and
    asserts its standing invariants at every checkpoint.  Exit 0 iff
    every requested scenario upholds every invariant — so the
    subcommand doubles as a CI gate.
    """
    import json

    from repro.service.scenarios import SCENARIOS, ScenarioRunner

    if args.list:
        print(f"{'scenario':>22} {'invariants':>3}  description")
        for name in sorted(SCENARIOS):
            spec = SCENARIOS[name]
            print(f"{name:>22} {len(spec.invariants):>3}  {spec.description}")
        return 0

    names = args.names or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        known = ", ".join(sorted(SCENARIOS))
        print(f"unknown scenario(s): {', '.join(unknown)} (known: {known})")
        return 2

    try:
        runner = ScenarioRunner(
            mode=args.mode,
            num_shards=args.shards,
            transport=args.transport,
            seed=args.seed,
            key_bits=args.bits,
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    reports = []
    for name in names:
        spec = SCENARIOS[name]
        if args.transport == "edge" and not spec.edge_ok:
            print(f"{name}: skipped (not edge-capable)")
            continue
        reports.append(runner.run(spec))

    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2))
        return 0 if all(r.ok for r in reports) else 1

    print(
        f"{'scenario':>22} {'ok':>5} {'reqs':>5} {'grant':>6} {'deny':>5} "
        f"{'shed':>5} {'err':>4} {'rekeys':>6} {'p50ms':>7} {'p99ms':>7}"
    )
    for r in reports:
        print(
            f"{r.name:>22} {str(r.ok):>5} {r.requests:>5} {r.granted:>6} "
            f"{r.denied:>5} {r.overloaded:>5} {r.errored:>4} {r.rekeys:>6} "
            f"{r.p50_ms:>7.2f} {r.p99_ms:>7.2f}"
        )
        for violation in r.violations():
            print(
                f"    VIOLATION [{violation['invariant']}] at "
                f"{violation['at']}: {violation['detail']}"
            )
    ok = all(r.ok for r in reports)
    print(f"{len(reports)} scenario(s), all invariants {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Coalition joint-administration reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the Figure 1/2 scenario")
    demo.add_argument("--bits", type=int, default=256)
    demo.add_argument("--proof", action="store_true", help="print the proof tree")
    demo.set_defaults(func=_cmd_demo)

    keygen = sub.add_parser("keygen", help="shared RSA key generation")
    keygen.add_argument("-n", type=int, default=3, help="number of domains")
    keygen.add_argument("--bits", type=int, default=256)
    keygen.add_argument(
        "--dealerless", action="store_true",
        help="run the real Boneh-Franklin protocol (slow)",
    )
    keygen.set_defaults(func=_cmd_keygen)

    liability = sub.add_parser("liability", help="E8 trust-liability sweep")
    liability.add_argument("--domains", type=int, nargs="+", default=[2, 3, 5, 8])
    liability.add_argument("--trials", type=int, default=5000)
    liability.set_defaults(func=_cmd_liability)

    availability = sub.add_parser("availability", help="E10 m-of-n availability")
    availability.add_argument("-n", type=int, default=5)
    availability.add_argument("-m", type=int, default=3)
    availability.set_defaults(func=_cmd_availability)

    dynamics = sub.add_parser("dynamics", help="E11 join-cost sweep")
    dynamics.add_argument("--certs", type=int, nargs="+", default=[1, 5, 15])
    dynamics.set_defaults(func=_cmd_dynamics)

    serve = sub.add_parser(
        "serve-bench",
        help="E14 sharded-service throughput/latency sweep",
    )
    serve.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep",
    )
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument(
        "--rate", type=float, default=0.0,
        help="open-loop arrival rate in req/s (0 = max pressure)",
    )
    serve.add_argument("--queue-depth", type=int, default=256)
    serve.add_argument(
        "--mode", choices=["threaded", "process", "manual", "inline"],
        default="threaded",
        help="worker mode (process = per-shard worker processes)",
    )
    serve.add_argument(
        "--batch", type=int, default=1,
        help="client batch size: submit_batch every k arrivals",
    )
    serve.add_argument("--read-fraction", type=float, default=0.5)
    serve.add_argument(
        "--revoke-every", type=int, default=25,
        help="publish a revocation epoch every k arrivals (0 = off)",
    )
    serve.add_argument("--objects", type=int, default=8)
    serve.add_argument("--bits", type=int, default=256)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--overdrive", type=int, default=0, metavar="DEPTH",
        help="extra run with this tiny queue depth to show load shedding",
    )
    serve.add_argument("--json", action="store_true")
    serve.add_argument(
        "--transport", choices=["inproc", "socket"], default="inproc",
        help="socket = drive the sweep through the asyncio edge over TCP",
    )
    serve.add_argument(
        "--socket-loop", choices=["closed", "open"], default="closed",
        help="socket transport loop discipline (open uses --rate pacing)",
    )
    serve.add_argument(
        "--socket-clients", type=int, default=4,
        help="concurrent client connections for the socket transport",
    )
    serve.add_argument(
        "--churn-every", type=int, default=0,
        help="closed-loop socket: reconnect each connection every k requests",
    )
    serve.set_defaults(func=_cmd_serve_bench)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the asyncio network edge until SIGTERM (graceful drain)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument(
        "--port", type=int, default=0, help="0 = pick a free port"
    )
    serve_cmd.add_argument("--shards", type=int, default=4)
    serve_cmd.add_argument("--queue-depth", type=int, default=256)
    serve_cmd.add_argument("--objects", type=int, default=8)
    serve_cmd.add_argument("--bits", type=int, default=256)
    serve_cmd.add_argument(
        "--mode", choices=["threaded", "process"], default="threaded"
    )
    serve_cmd.add_argument("--seed", type=int, default=0)
    serve_cmd.add_argument("--drain-timeout", type=float, default=30.0)
    serve_cmd.add_argument(
        "--client-bundle", default="", metavar="PATH",
        help="export client signing material (users, certs) as JSON",
    )
    serve_cmd.add_argument(
        "--port-file", default="", metavar="PATH",
        help="write the bound port here once listening",
    )
    serve_cmd.set_defaults(func=_cmd_serve)

    smoke = sub.add_parser(
        "edge-smoke",
        help="drive a running serve edge from a separate process",
    )
    smoke.add_argument("--host", default="127.0.0.1")
    smoke.add_argument("--port", type=int, required=True)
    smoke.add_argument(
        "--bundle", required=True,
        help="client bundle the serve process exported",
    )
    smoke.add_argument("--requests", type=int, default=20)
    smoke.add_argument("--timeout", type=float, default=30.0)
    smoke.set_defaults(func=_cmd_edge_smoke)

    explain = sub.add_parser(
        "explain",
        help="trace one decision end to end (spans + proof + audit)",
    )
    explain.add_argument("--bits", type=int, default=256)
    explain.add_argument(
        "--json", action="store_true", help="emit the span tree as JSON"
    )
    explain.set_defaults(func=_cmd_explain)

    metrics = sub.add_parser(
        "metrics",
        help="run a traffic sample, print the merged metrics snapshot",
    )
    metrics.add_argument("--shards", type=int, default=2)
    metrics.add_argument("--requests", type=int, default=50)
    metrics.add_argument("--bits", type=int, default=256)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--tracing", action="store_true",
        help="enable decision tracing during the sample",
    )
    metrics.set_defaults(func=_cmd_metrics)

    health = sub.add_parser(
        "health",
        help="liveness/readiness probes after a (chaos-optional) sample",
    )
    health.add_argument("--shards", type=int, default=4)
    health.add_argument("--requests", type=int, default=50)
    health.add_argument("--queue-depth", type=int, default=256)
    health.add_argument("--bits", type=int, default=256)
    health.add_argument("--seed", type=int, default=0)
    health.add_argument(
        "--chaos-raise-every", type=int, default=0, metavar="N",
        help="inject an evaluation fault every N tickets (0 = off)",
    )
    health.add_argument(
        "--kill-shard", type=int, default=-1, metavar="S",
        help="kill shard S's worker once, mid-run (-1 = off)",
    )
    health.add_argument(
        "--kill-after", type=int, default=10, metavar="K",
        help="the kill fires after the worker processed K tickets",
    )
    health.add_argument("--json", action="store_true")
    health.set_defaults(func=_cmd_health)

    replay = sub.add_parser(
        "replay",
        help="recover a decision WAL and re-derive it byte-for-byte",
    )
    replay.add_argument(
        "--wal-dir", required=True, help="WAL directory to recover/replay"
    )
    replay.add_argument(
        "--record", action="store_true",
        help="first record a fresh workload into --wal-dir",
    )
    replay.add_argument("--requests", type=int, default=200)
    replay.add_argument("--shards", type=int, default=1)
    replay.add_argument("--objects", type=int, default=4)
    replay.add_argument("--read-fraction", type=float, default=0.4)
    replay.add_argument(
        "--deny-fraction", type=float, default=0.2,
        help="fraction of writes presented with the read cert (denied)",
    )
    replay.add_argument(
        "--revoke-every", type=int, default=0,
        help="publish a revocation epoch every k arrivals (0 = off)",
    )
    replay.add_argument("--bits", type=int, default=128)
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--truncate-tail", type=int, default=0, metavar="BYTES",
        help="after recording, tear BYTES off the last segment (crash sim)",
    )
    replay.add_argument("--json", action="store_true")
    replay.set_defaults(func=_cmd_replay)

    scenario = sub.add_parser(
        "scenario",
        help="run seeded coalition-life scenarios with standing invariants",
    )
    scenario.add_argument(
        "names", nargs="*",
        help="scenario names to run (default: all registered)",
    )
    scenario.add_argument(
        "--list", action="store_true", help="list registered scenarios"
    )
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument("--shards", type=int, default=2)
    scenario.add_argument(
        "--mode", choices=["threaded", "process", "manual", "inline"],
        default="manual",
        help="service mode (manual replays deterministically)",
    )
    scenario.add_argument(
        "--transport", choices=["inproc", "edge"], default="inproc",
        help="edge = drive request traffic over a real TCP connection",
    )
    scenario.add_argument("--bits", type=int, default=256)
    scenario.add_argument("--json", action="store_true")
    scenario.set_defaults(func=_cmd_scenario)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
