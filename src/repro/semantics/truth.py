"""Truth conditions of Appendix C: evaluating formulas on runs.

The evaluator implements the paper's truth conditions literally, over
the concrete :class:`~repro.semantics.runs.Run` representation.  Groups
are modelled as principals whose send histories define what the group
says, so the speaks-for-group semantics ("P says X at R implies G says
X at R") is checked as a real implication between histories.

``believes`` quantifies over the points of an interpreted system that
are locally indistinguishable from the current point, exactly as the
possibility-relation semantics prescribes; systems used in tests keep
this quantification tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from ..core.formulas import (
    And,
    At,
    Believes,
    Controls,
    Fresh,
    Has,
    Implies,
    KeySpeaksFor,
    Not,
    Received,
    Said,
    Says,
    SpeaksForGroup,
    TimeLe,
    TRUE,
)
from ..core.messages import Signed
from ..core.temporal import Temporal, TemporalKind
from ..core.terms import (
    CompoundPrincipal,
    Group,
    KeyBoundPrincipal,
    KeyRef,
    Principal,
    ThresholdPrincipal,
)
from .runs import Run

__all__ = ["InterpretedSystem", "truth"]


@dataclass
class InterpretedSystem:
    """``I = (R, pi)``: a set of legal runs plus primitive valuations."""

    runs: List[Run]
    # Truth of primitive propositions: set of (run_index, time, name).
    primitives: Set[Tuple[int, int, str]] = field(default_factory=set)

    def points(self) -> Iterable[Tuple[Run, int]]:
        for run in self.runs:
            for t in range(run.horizon + 1):
                yield run, t


def _subject_name(subject: object) -> str:
    """The history key for a principal-like subject."""
    if isinstance(subject, Principal):
        return subject.name
    if isinstance(subject, Group):
        return subject.name
    if isinstance(subject, KeyBoundPrincipal):
        return subject.principal.name
    if isinstance(subject, CompoundPrincipal):
        return "+".join(p.name for p in subject.principals())
    if isinstance(subject, ThresholdPrincipal):
        return _subject_name(subject.base)
    raise TypeError(f"no history for subject {subject!r}")


def _times_of(temporal: Temporal) -> List[int]:
    if temporal.kind is TemporalKind.POINT:
        return [temporal.lo]
    return list(range(temporal.lo, temporal.hi + 1))


def _quantify(temporal: Temporal, checks: Iterable[bool]) -> bool:
    if temporal.kind is TemporalKind.SOME:
        return any(checks)
    return all(checks)


def _state_of(run: Run, t: int, name: str):
    """The local state, or None for a principal absent from the run.

    An absent principal has an empty history: every positive modality
    about it evaluates false (the truth conditions stay total).
    """
    return run.at(t).locals.get(name)


def _received_at(run: Run, t: int, name: str, local_time: int, message) -> bool:
    state = _state_of(run, t, name)
    if state is None or local_time > state.time:
        return False
    return message in state.derivable_messages(until=local_time)


def _says_at(run: Run, t: int, name: str, local_time: int, message) -> bool:
    state = _state_of(run, t, name)
    if state is None or local_time > state.time:
        return False
    end_real = run.end_of_local_time(name, local_time)
    keyset = (
        run.at(end_real).local(name).keys if end_real is not None else state.keys
    )
    from ..core.messages import submessages

    for te in state.history.sends(until=state.time):
        if te.time != local_time:
            continue
        if message in submessages(te.event.message, frozenset(keyset)):
            return True
    return False


def _said_at(run: Run, t: int, name: str, local_time: int, message) -> bool:
    state = _state_of(run, t, name)
    if state is None or local_time > state.time:
        return False
    return any(
        _says_at(run, t, name, t2, message) for t2 in range(local_time + 1)
    )


def _signed_messages_received(
    run: Run, t: int, name: str, local_time: int, key: KeyRef
) -> List[Signed]:
    """Signed-with-``key`` messages derivable by ``name`` up to local_time."""
    state = _state_of(run, t, name)
    if state is None:
        return []
    bound = min(local_time, state.time)
    return [
        m
        for m in state.derivable_messages(until=bound)
        if isinstance(m, Signed) and m.key == key
    ]


def truth(system: InterpretedSystem, run: Run, t: int, formula) -> bool:
    """``(I, r, t) |= formula``."""
    # ----- logical connectives ---------------------------------------
    if formula is TRUE:
        return True
    if isinstance(formula, Not):
        return not truth(system, run, t, formula.body)
    if isinstance(formula, And):
        return truth(system, run, t, formula.left) and truth(
            system, run, t, formula.right
        )
    if isinstance(formula, Implies):
        return (not truth(system, run, t, formula.antecedent)) or truth(
            system, run, t, formula.consequent
        )
    if isinstance(formula, TimeLe):
        return formula.left <= formula.right

    # ----- modalities --------------------------------------------------
    if isinstance(formula, Received):
        name = _subject_name(formula.subject)
        return _quantify(
            formula.time,
            (
                _received_at(run, t, name, lt, formula.body)
                for lt in _times_of(formula.time)
            ),
        )
    if isinstance(formula, Says):
        name = _subject_name(formula.subject)
        return _quantify(
            formula.time,
            (
                _says_at(run, t, name, lt, formula.body)
                for lt in _times_of(formula.time)
            ),
        )
    if isinstance(formula, Said):
        name = _subject_name(formula.subject)
        return _quantify(
            formula.time,
            (
                _said_at(run, t, name, lt, formula.body)
                for lt in _times_of(formula.time)
            ),
        )
    if isinstance(formula, Has):
        name = _subject_name(formula.subject)
        state = _state_of(run, t, name)
        if state is None:
            return False
        return _quantify(
            formula.time,
            (
                lt <= state.time and formula.key in state.keys
                for lt in _times_of(formula.time)
            ),
        )
    if isinstance(formula, Fresh):
        # fresh_{t',P} X: no principal said X at t'.
        return _quantify(
            formula.time,
            (
                not any(
                    _said_at(run, t, q, lt, formula.message)
                    for q in run.principals()
                )
                for lt in _times_of(formula.time)
            ),
        )
    if isinstance(formula, At):
        # phi at_P t': phi true at every real instant of local time t'.
        name = _subject_name(formula.place)
        if _state_of(run, t, name) is None:
            return False
        results = []
        for lt in _times_of(formula.time):
            if lt > run.local_time(name, t):
                results.append(False)
                continue
            start = run.start_of_local_time(name, lt)
            end = run.end_of_local_time(name, lt)
            if start is None or end is None:
                results.append(False)
                continue
            results.append(
                all(
                    truth(system, run, real, formula.body)
                    for real in range(start, end + 1)
                )
            )
        return _quantify(formula.time, results)
    if isinstance(formula, Controls):
        # (1) t' <= Time_P and (2) says implies at.
        name = _subject_name(formula.subject)
        results = []
        for lt in _times_of(formula.time):
            if lt > run.local_time(name, t):
                results.append(False)
                continue
            says = Says(formula.subject, Temporal.point(lt), formula.body)
            located = At(formula.body, formula.subject, Temporal.point(lt))
            results.append(
                (not truth(system, run, t, says))
                or truth(system, run, t, located)
            )
        return _quantify(formula.time, results)
    if isinstance(formula, Believes):
        # Possibility-relation semantics over the interpreted system.
        name = _subject_name(formula.subject)
        here = _state_of(run, t, name)
        if here is None:
            return False
        results = []
        for lt in _times_of(formula.time):
            if lt > here.time:
                results.append(False)
                continue
            ok = True
            for other_run, other_t in system.points():
                other = _state_of(other_run, other_t, name)
                if other is None or not _locally_indistinguishable(here, other):
                    continue
                located = At(formula.body, formula.subject, Temporal.point(lt))
                if not truth(system, other_run, other_t, located):
                    ok = False
                    break
            results.append(ok)
        return _quantify(formula.time, results)
    if isinstance(formula, KeySpeaksFor):
        return _key_speaks_for(system, run, t, formula)
    if isinstance(formula, SpeaksForGroup):
        return _speaks_for_group(system, run, t, formula)

    raise TypeError(f"no truth condition for {type(formula).__name__}")


def _locally_indistinguishable(a, b) -> bool:
    return (
        a.name == b.name
        and a.time == b.time
        and a.keys == b.keys
        and list(a.history) == list(b.history)
    )


def _key_speaks_for(
    system: InterpretedSystem, run: Run, t: int, formula: KeySpeaksFor
) -> bool:
    """Good-key semantics: received K-signed messages were said by the owner.

    The observer Q is the clock owner recorded on the temporal
    annotation; with no recorded observer, *every* principal's received
    messages are checked (a strictly stronger condition).
    """
    subject = formula.subject
    owner_name = _subject_name(subject)
    observers = (
        [_subject_name(formula.time.clock)]
        if formula.time.clock is not None
        else run.principals()
    )
    results = []
    for lt in _times_of(formula.time):
        ok = True
        for observer in observers:
            if observer not in run.at(t).locals:
                continue
            for signed in _signed_messages_received(
                run, t, observer, lt, formula.key
            ):
                if isinstance(subject, ThresholdPrincipal):
                    said = any(
                        _said_at(run, t, p.name, lt, signed.body)
                        for p in subject.base.principals()
                    ) or _said_at(run, t, owner_name, lt, signed.body)
                else:
                    said = _said_at(run, t, owner_name, lt, signed.body)
                if not said:
                    ok = False
                    break
            if not ok:
                break
        results.append(ok)
    return _quantify(formula.time, results)


def _speaks_for_group(
    system: InterpretedSystem, run: Run, t: int, formula: SpeaksForGroup
) -> bool:
    """Membership semantics: member utterances are echoed by the group.

    For a threshold subject ``CP_{m,n}`` the premise is that ``m``
    members signed the same request with their bound keys.
    """
    group_name = _subject_name(formula.group)
    subject = formula.subject
    results = []
    for lt in _times_of(formula.time):
        results.append(
            _membership_holds_at(run, t, subject, group_name, lt)
        )
    return _quantify(formula.time, results)


def _membership_holds_at(
    run: Run, t: int, subject: object, group_name: str, lt: int
) -> bool:
    if isinstance(subject, ThresholdPrincipal):
        # Collect messages that >= m members said (signed with bound keys).
        members = subject.base.members
        counts = {}
        for member in members:
            if not isinstance(member, KeyBoundPrincipal):
                return False
            name = member.principal.name
            if name not in run.at(t).locals:
                continue
            state = run.at(t).local(name)
            for te in state.history.sends(until=min(lt, state.time)):
                message = te.event.message
                if isinstance(message, Signed) and message.key == member.key:
                    core = message.body
                    # Members sign "P_i says X" (Figure 2); the shared
                    # request is the quoted X — the same unwrapping
                    # axiom A38 performs.
                    from ..core.formulas import Says as _Says

                    if (
                        isinstance(core, _Says)
                        and core.subject == member.principal
                    ):
                        core = core.body
                    counts.setdefault(core, set()).add(name)
        for core, signers in counts.items():
            if len(signers) >= subject.m:
                if not _said_at(run, t, group_name, lt, core):
                    return False
        return True

    name = _subject_name(subject)
    if name not in run.at(t).locals:
        return True  # vacuous: the member never speaks
    state = run.at(t).local(name)
    for te in state.history.sends(until=min(lt, state.time)):
        message = te.event.message
        if isinstance(subject, KeyBoundPrincipal):
            if not (isinstance(message, Signed) and message.key == subject.key):
                continue
            payload = message.body
        else:
            payload = message
        if not _said_at(run, t, group_name, lt, payload):
            return False
    return True
