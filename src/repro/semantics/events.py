"""Events and histories of the model of computation (Appendix C).

A principal's history is a sequence of timestamped basic events:
``send(X, Q)``, ``receive(X)`` and ``generate(X)``.  Times in a history
are the principal's *local* times and must be strictly increasing for
the history to be sequential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

__all__ = ["Send", "Receive", "Generate", "Event", "TimestampedEvent", "History"]


@dataclass(frozen=True)
class Send:
    """``send(X, recipient)``."""

    message: object
    recipient: str


@dataclass(frozen=True)
class Receive:
    """``receive(X)``."""

    message: object


@dataclass(frozen=True)
class Generate:
    """``generate(X)`` — typically key generation."""

    message: object


Event = object  # Send | Receive | Generate


@dataclass(frozen=True)
class TimestampedEvent:
    """An event paired with the local time it occurred at."""

    event: Event
    time: int


class History:
    """A sequential history: timestamped events with nondecreasing times.

    Appendix C requires strictly increasing times for *sequential*
    histories; we allow ties only for events injected at the same tick
    and expose :meth:`is_sequential` for the strict check.
    """

    def __init__(self, events: Optional[Iterable[TimestampedEvent]] = None):
        self._events: List[TimestampedEvent] = list(events or [])

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def append(self, event: Event, time: int) -> None:
        if self._events and time < self._events[-1].time:
            raise ValueError("history times must be nondecreasing")
        self._events.append(TimestampedEvent(event=event, time=time))

    def is_sequential(self, upto: Optional[int] = None) -> bool:
        """Strictly increasing times, all <= ``upto`` when given."""
        times = [te.time for te in self._events]
        if any(t2 <= t1 for t1, t2 in zip(times, times[1:])):
            return False
        if upto is not None and times and times[-1] > upto:
            return False
        return True

    def events_until(self, time: int) -> List[TimestampedEvent]:
        return [te for te in self._events if te.time <= time]

    def sends(self, until: Optional[int] = None) -> List[TimestampedEvent]:
        out = [te for te in self._events if isinstance(te.event, Send)]
        if until is not None:
            out = [te for te in out if te.time <= until]
        return out

    def receives(self, until: Optional[int] = None) -> List[TimestampedEvent]:
        out = [te for te in self._events if isinstance(te.event, Receive)]
        if until is not None:
            out = [te for te in out if te.time <= until]
        return out

    def generates(self, until: Optional[int] = None) -> List[TimestampedEvent]:
        out = [te for te in self._events if isinstance(te.event, Generate)]
        if until is not None:
            out = [te for te in out if te.time <= until]
        return out

    def copy(self) -> "History":
        return History(self._events)
