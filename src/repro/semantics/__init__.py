"""Model of computation and executable soundness checking.

Appendix C's runs/histories/truth-conditions and Appendix D's soundness
theorem, realized as code: random legal runs are generated and every
axiom schema is validated against the truth conditions on them.
"""

from .bridge import idealize_payload, run_from_trace
from .events import Generate, History, Receive, Send, TimestampedEvent
from .generators import GeneratorConfig, RunBuilder, generate_system
from .runs import (
    EnvironmentState,
    GlobalState,
    LegalityError,
    LocalState,
    Run,
)
from .soundness import Counterexample, SoundnessChecker, SoundnessReport
from .truth import InterpretedSystem, truth

__all__ = [
    "idealize_payload",
    "run_from_trace",
    "Generate",
    "History",
    "Receive",
    "Send",
    "TimestampedEvent",
    "GeneratorConfig",
    "RunBuilder",
    "generate_system",
    "EnvironmentState",
    "GlobalState",
    "LegalityError",
    "LocalState",
    "Run",
    "Counterexample",
    "SoundnessChecker",
    "SoundnessReport",
    "InterpretedSystem",
    "truth",
]
