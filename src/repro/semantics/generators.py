"""Random legal-run generation for property-based soundness checking.

:class:`RunBuilder` constructs runs event by event while maintaining the
Appendix C legality invariants by construction (clocks monotone, keysets
grow only via generate/receive, receives follow sends).  The random
generator drives a builder with a seeded RNG to produce diverse small
systems: plain/signed/tuple messages, key-owning principals (making the
good-key semantics true), and group principals that echo their members'
utterances (making membership semantics true).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.messages import Data, Encrypted, MessageTuple, Signed
from ..core.terms import KeyRef
from .events import Generate, History, Receive, Send
from .runs import EnvironmentState, GlobalState, LocalState, Run
from .truth import InterpretedSystem

__all__ = ["RunBuilder", "generate_system", "GeneratorConfig"]


class RunBuilder:
    """Builds a legal run tick by tick.

    All principals share real time; each has a nonnegative clock skew.
    One global state is snapshotted per tick via :meth:`snapshot`.
    """

    def __init__(self, principals: Sequence[str], skews: Optional[Dict[str, int]] = None):
        self._names = list(principals)
        self._skews = dict(skews or {})
        self._real = 0
        self._keys: Dict[str, Set[object]] = {n: set() for n in self._names}
        self._histories: Dict[str, History] = {n: History() for n in self._names}
        self._states: List[GlobalState] = []
        # messages sent but not yet delivered: (recipient, message, ready_at)
        self._in_flight: List[Tuple[str, object, int]] = []

    # ------------------------------------------------------------- time

    def local_time(self, name: str) -> int:
        return self._real + self._skews.get(name, 0)

    def tick(self) -> None:
        """Close the current tick (snapshot it) and advance real time.

        The snapshot at real time ``r`` therefore includes every event
        that happened at local times <= r, so point-time formulas about
        tick ``r`` are already true at real time ``r``.
        """
        self.snapshot()
        self._real += 1
        still: List[Tuple[str, object, int]] = []
        for recipient, message, ready_at in self._in_flight:
            if ready_at <= self._real:
                self._histories[recipient].append(
                    Receive(message), self.local_time(recipient)
                )
            else:
                still.append((recipient, message, ready_at))
        self._in_flight = still

    # ------------------------------------------------------------ events

    def give_key(self, name: str, key: KeyRef) -> None:
        """Record local key generation."""
        self._histories[name].append(Generate(key), self.local_time(name))
        self._keys[name].add(key)

    def send(self, sender: str, recipient: str, message: object, delay: int = 1) -> None:
        """Send a message; it is received ``delay`` ticks later."""
        if delay < 1:
            raise ValueError("delivery must be strictly after the send")
        self._histories[sender].append(
            Send(message, recipient), self.local_time(sender)
        )
        self._in_flight.append((recipient, message, self._real + delay))

    def snapshot(self) -> None:
        locals_now = {
            name: LocalState(
                name=name,
                time=self.local_time(name),
                keys=frozenset(self._keys[name]),
                history=self._histories[name].copy(),
            )
            for name in self._names
        }
        env = EnvironmentState(time=self._real)
        self._states.append(GlobalState(environment=env, locals=locals_now))

    def build(self) -> Run:
        """Drain in-flight messages and return the finished run."""
        while self._in_flight:
            self.tick()
        self.snapshot()  # the final, quiet state
        return Run(self._states)


@dataclass
class GeneratorConfig:
    """Shape of randomly generated systems."""

    n_principals: int = 3
    n_keys: int = 2
    n_groups: int = 1
    n_ticks: int = 8
    send_probability: float = 0.7
    signed_probability: float = 0.5
    tuple_probability: float = 0.2
    encrypted_probability: float = 0.15
    max_skew: int = 0  # zero-skew by default (signature axioms assume it)
    n_runs: int = 3


def generate_system(config: GeneratorConfig, seed: int = 0) -> InterpretedSystem:
    """A small interpreted system of random legal runs.

    Key discipline: each key is owned by exactly one principal, and only
    the owner ever signs with it — so ``K => owner`` is semantically
    good.  Group discipline: group principals echo (resend to
    themselves) every member utterance, making membership true.
    """
    rng = random.Random(seed)
    runs = []
    for run_index in range(config.n_runs):
        runs.append(_generate_run(config, rng, run_index))
    return InterpretedSystem(runs=runs)


def _generate_run(config: GeneratorConfig, rng: random.Random, run_index: int) -> Run:
    principals = [f"P{i}" for i in range(config.n_principals)]
    groups = [f"G{i}" for i in range(config.n_groups)]
    members: Dict[str, List[str]] = {
        g: rng.sample(principals, k=max(1, len(principals) // 2)) for g in groups
    }
    skews = {
        n: rng.randint(0, config.max_skew) for n in principals + groups
    }
    builder = RunBuilder(principals + groups, skews)

    keys = [KeyRef(f"key-{run_index}-{i}") for i in range(config.n_keys)]
    owners = {key: rng.choice(principals) for key in keys}
    for key, owner in owners.items():
        builder.give_key(owner, key)

    counter = 0
    last_sent: Dict[str, Tuple[int, object]] = {}
    for _ in range(config.n_ticks):
        for sender in principals:
            if rng.random() > config.send_probability:
                continue
            counter += 1
            message: object = Data(f"m{run_index}.{counter}")
            owned = [k for k, o in owners.items() if o == sender]
            if owned and rng.random() < config.signed_probability:
                message = Signed(message, rng.choice(owned))
            elif keys and rng.random() < config.encrypted_probability:
                # Encrypt to some key holder (who can then decrypt:
                # exercises the A11/A13 truth conditions).
                key = rng.choice(keys)
                message = Encrypted(message, key)
            if rng.random() < config.tuple_probability:
                message = MessageTuple((message, Data(f"aux{counter}")))
            if sender in last_sent and rng.random() < 0.3:
                # Occasionally utter a (true) formula about an earlier
                # send — this exercises the jurisdiction axioms
                # non-vacuously in the soundness checks.
                from ..core.formulas import Said
                from ..core.temporal import Temporal
                from ..core.terms import Principal

                prev_time, prev_message = last_sent[sender]
                message = Said(
                    Principal(sender), Temporal.point(prev_time), prev_message
                )
            elif groups and rng.random() < 0.2:
                # Or utter a (true) membership formula about a fellow
                # group member — the A24-A33 group-jurisdiction fodder.
                from ..core.formulas import SpeaksForGroup
                from ..core.temporal import Temporal
                from ..core.terms import Group, Principal

                group = rng.choice(groups)
                member = rng.choice(members[group])
                message = SpeaksForGroup(
                    Principal(member),
                    Temporal.point(builder.local_time(sender)),
                    Group(group),
                )
            recipient = rng.choice([p for p in principals if p != sender])
            builder.send(sender, recipient, message, delay=rng.randint(1, 2))
            last_sent[sender] = (builder.local_time(sender), message)
            # Group echo: membership semantics made true by construction.
            # The group echoes the member's exact utterance; the
            # submessage closure then covers unwrapped bodies too.
            for group, member_list in members.items():
                if sender in member_list:
                    builder.send(group, group, message, delay=1)
        builder.tick()
    return builder.build()
