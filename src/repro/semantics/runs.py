"""Runs, local/global states, and the legality conditions of Appendix C.

A *run* maps each real-time tick to a global state: the environment
state plus one local state per (simple and compound) principal.  A run
is **legal** when the monotonicity and consistency conditions (a)-(h)
hold: clocks don't outrun real time, keysets grow monotonically and
only through generation or derivation from received messages, and every
receive is matched by an earlier send.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..core.messages import submessages
from .events import History, TimestampedEvent

__all__ = ["LocalState", "EnvironmentState", "GlobalState", "Run", "LegalityError"]


class LegalityError(Exception):
    """A run violates one of the Appendix C legality conditions."""


@dataclass
class LocalState:
    """``s_i = (i, t_i, K_i, H_i)``: identity, local time, keys, history."""

    name: str
    time: int
    keys: FrozenSet[object]
    history: History

    def messages_received(self, until: Optional[int] = None) -> List[object]:
        """Msgs_P: messages received at or before ``until`` (local time)."""
        bound = self.time if until is None else min(until, self.time)
        return [
            te.event.message
            for te in self.history.receives(until=bound)
        ]

    def derivable_messages(self, until: Optional[int] = None) -> Set[object]:
        """submsgs closure of the received messages under held keys."""
        out: Set[object] = set()
        for message in self.messages_received(until=until):
            out |= submessages(message, frozenset(self.keys))
        return out


@dataclass
class EnvironmentState:
    """Pe's state: real time, its history, per-principal message buffers."""

    time: int
    history: History = field(default_factory=History)
    buffers: Dict[str, List[object]] = field(default_factory=dict)


@dataclass
class GlobalState:
    """One point of a run: environment plus all local states."""

    environment: EnvironmentState
    locals: Dict[str, LocalState]

    def local(self, name: str) -> LocalState:
        return self.locals[name]


class Run:
    """A function from real time to global states, with legality checks."""

    def __init__(self, states: Sequence[GlobalState]):
        if not states:
            raise ValueError("a run needs at least one global state")
        self._states = list(states)

    def __len__(self) -> int:
        return len(self._states)

    @property
    def horizon(self) -> int:
        return len(self._states) - 1

    def at(self, real_time: int) -> GlobalState:
        """Global state at ``real_time`` (clamped to the horizon)."""
        index = max(0, min(real_time, self.horizon))
        return self._states[index]

    def principals(self) -> List[str]:
        return list(self._states[0].locals)

    def local_time(self, name: str, real_time: int) -> int:
        """Time_P(r, t)."""
        return self.at(real_time).local(name).time

    def start_of_local_time(self, name: str, local_time: int) -> Optional[int]:
        """Start_P(r, t_i): first real time with that local time."""
        for real in range(self.horizon + 1):
            if self.local_time(name, real) == local_time:
                return real
        return None

    def end_of_local_time(self, name: str, local_time: int) -> Optional[int]:
        """End_P(r, t_i): last real time with that local time."""
        found = None
        for real in range(self.horizon + 1):
            if self.local_time(name, real) == local_time:
                found = real
        return found

    # ----------------------------------------------------------- legality

    def check_legality(self) -> None:
        """Raise :class:`LegalityError` on any violated condition (a)-(h)."""
        self._check_clock_monotonicity()
        self._check_keyset_monotonicity()
        self._check_keyset_provenance()
        self._check_receive_causality()

    def is_legal(self) -> bool:
        try:
            self.check_legality()
        except LegalityError:
            return False
        return True

    def _check_clock_monotonicity(self) -> None:
        # (a)/(e): if t <= t', Time_P(r, t) <= Time_P(r, t'); local clocks
        # are also bounded by elapsed real time plus their initial offset.
        for name in self.principals():
            previous = None
            for real in range(self.horizon + 1):
                now = self.local_time(name, real)
                if previous is not None and now < previous:
                    raise LegalityError(
                        f"clock of {name} runs backwards at real time {real}"
                    )
                previous = now

    def _check_keyset_monotonicity(self) -> None:
        # (b)/(f): keysets only grow.
        for name in self.principals():
            previous: FrozenSet[object] = frozenset()
            for real in range(self.horizon + 1):
                keys = self.at(real).local(name).keys
                if not previous <= keys:
                    raise LegalityError(
                        f"keyset of {name} shrank at real time {real}"
                    )
                previous = keys

    def _check_keyset_provenance(self) -> None:
        # (c)/(g): every key was generated locally or derived from
        # received messages under previously held keys.
        for name in self.principals():
            for real in range(self.horizon + 1):
                state = self.at(real).local(name)
                generated = {
                    te.event.message
                    for te in state.history.generates(until=state.time)
                }
                initial = self.at(0).local(name).keys
                for key in state.keys:
                    if key in initial or key in generated:
                        continue
                    if key in state.derivable_messages():
                        continue
                    raise LegalityError(
                        f"{name} holds key {key!r} with no provenance "
                        f"at real time {real}"
                    )

    def _check_receive_causality(self) -> None:
        # (d)/(h): every receive is matched by an earlier send to P.
        final = self.at(self.horizon)
        for name in self.principals():
            state = final.local(name)
            for te in state.history.receives():
                if not self._matching_send_exists(name, te):
                    raise LegalityError(
                        f"{name} received {te.event.message!r} at local "
                        f"time {te.time} with no matching earlier send"
                    )

    def _matching_send_exists(
        self, recipient: str, receive_event: TimestampedEvent
    ) -> bool:
        message = receive_event.event.message
        receive_start = self.start_of_local_time(recipient, receive_event.time)
        if receive_start is None:
            receive_start = self.horizon
        final = self.at(self.horizon)
        for sender_name, sender_state in final.locals.items():
            for send_te in sender_state.history.sends():
                event = send_te.event
                if event.message != message or event.recipient != recipient:
                    continue
                send_end = self.end_of_local_time(sender_name, send_te.time)
                if send_end is None:
                    continue
                if send_end <= receive_start:
                    return True
        return False
