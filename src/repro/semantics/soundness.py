"""Executable soundness checking (Appendix D as a falsification harness).

The paper proves soundness by (1) validating every axiom against the
truth conditions and (2) showing derivations preserve truth.  This
module makes part (1) executable: for each axiom schema we enumerate
premise instances that are *true* on generated legal runs and check the
conclusion is also true.  A returned counterexample means the axiom
encoding (or the truth conditions) is unsound; the property-based test
suite runs this over many random systems.

Checks are grouped exactly as in Appendix D's proof: the monotonicity /
reduction axioms, the originator-identification axiom for distributed
private key shares (A10), and the access-control axioms (A24-A38).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..core.formulas import (
    At,
    Believes,
    Controls,
    Fresh,
    Has,
    Implies,
    KeySpeaksFor,
    Received,
    Said,
    Says,
    SpeaksForGroup,
)
from ..core.messages import Data, MessageTuple, Signed
from ..core.temporal import Temporal
from ..core.terms import Group, KeyRef, Principal
from .runs import Run
from .truth import InterpretedSystem, truth

__all__ = ["Counterexample", "SoundnessReport", "SoundnessChecker"]


@dataclass(frozen=True)
class Counterexample:
    """A premise-true/conclusion-false instance of an axiom."""

    axiom: str
    run_index: int
    real_time: int
    description: str


@dataclass
class SoundnessReport:
    """Outcome of a soundness sweep over one interpreted system."""

    instances_checked: int = 0
    counterexamples: List[Counterexample] = field(default_factory=list)
    per_axiom: Dict[str, int] = field(default_factory=dict)

    @property
    def sound(self) -> bool:
        return not self.counterexamples

    def merge(self, other: "SoundnessReport") -> None:
        self.instances_checked += other.instances_checked
        self.counterexamples.extend(other.counterexamples)
        for axiom, count in other.per_axiom.items():
            self.per_axiom[axiom] = self.per_axiom.get(axiom, 0) + count


class SoundnessChecker:
    """Runs per-axiom validity checks over an interpreted system."""

    def __init__(self, system: InterpretedSystem):
        self.system = system

    # ------------------------------------------------------------ driver

    def check_all(self) -> SoundnessReport:
        report = SoundnessReport()
        for check in (
            self.check_a7_interval_instantiation,
            self.check_a8_monotonicity,
            self.check_a9_reduction,
            self.check_a10_originator_identification,
            self.check_a11_decrypt,
            self.check_a12_read_signed,
            self.check_a15_a16_projection,
            self.check_a17_a18_responsibility,
            self.check_a19_a20_said_says,
            self.check_a21_freshness,
            self.check_a22_jurisdiction,
            self.check_a24_a33_membership_jurisdiction,
            self.check_a34_a38_group_membership,
            self.check_a1_a2_belief,
        ):
            report.merge(check())
        return report

    # ------------------------------------------------------------ helpers

    def _report(self, axiom: str) -> SoundnessReport:
        report = SoundnessReport()
        report.per_axiom[axiom] = 0
        return report

    def _record(
        self,
        report: SoundnessReport,
        axiom: str,
        ok: bool,
        run_index: int,
        t: int,
        description: str,
    ) -> None:
        report.instances_checked += 1
        report.per_axiom[axiom] = report.per_axiom.get(axiom, 0) + 1
        if not ok:
            report.counterexamples.append(
                Counterexample(
                    axiom=axiom,
                    run_index=run_index,
                    real_time=t,
                    description=description,
                )
            )

    def _send_facts(self, run: Run) -> List[Tuple[str, int, object]]:
        """(sender, local_time, message) for every send in the run."""
        final = run.at(run.horizon)
        facts = []
        for name in run.principals():
            for te in final.local(name).history.sends():
                facts.append((name, te.time, te.event.message))
        return facts

    def _receive_facts(self, run: Run) -> List[Tuple[str, int, object]]:
        final = run.at(run.horizon)
        facts = []
        for name in run.principals():
            for te in final.local(name).history.receives():
                facts.append((name, te.time, te.event.message))
        return facts

    # ------------------------------------------------------------- checks

    def check_a7_interval_instantiation(self) -> SoundnessReport:
        """A7: a closed-interval modality holds at every point inside."""
        report = self._report("A7")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._receive_facts(run)[:8]:
                hi = min(lt + 2, run.local_time(name, t))
                if hi < lt:
                    continue
                interval = Received(
                    Principal(name), Temporal.all(lt, hi), message
                )
                if not truth(self.system, run, t, interval):
                    continue
                for point in range(lt, hi + 1):
                    instance = Received(
                        Principal(name), Temporal.point(point), message
                    )
                    ok = truth(self.system, run, t, instance)
                    self._record(
                        report, "A7", ok, run_index, t,
                        f"interval instantiation at {point} for {name}",
                    )
        return report

    def check_a11_decrypt(self) -> SoundnessReport:
        """A11/A13: holding the key lets the receiver read the body."""
        from ..core.messages import Encrypted

        report = self._report("A11")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for receiver, lt, message in self._receive_facts(run):
                if not isinstance(message, Encrypted):
                    continue
                received = Received(
                    Principal(receiver), Temporal.point(lt), message
                )
                has_key = Has(Principal(receiver), Temporal.point(lt), message.key)
                if not (
                    truth(self.system, run, t, received)
                    and truth(self.system, run, t, has_key)
                ):
                    continue
                body = Received(
                    Principal(receiver), Temporal.point(lt), message.body
                )
                ok = truth(self.system, run, t, body)
                self._record(
                    report, "A11", ok, run_index, t,
                    f"{receiver} decrypts {message}",
                )
        return report

    def check_a8_monotonicity(self) -> SoundnessReport:
        """A8a-c: received/said/has persist forward in time."""
        report = self._report("A8")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._receive_facts(run):
                premise = Received(Principal(name), Temporal.point(lt), message)
                if not truth(self.system, run, t, premise):
                    continue
                later = Received(
                    Principal(name), Temporal.point(lt + 1), message
                )
                ok = truth(self.system, run, t, later) or lt + 1 > run.local_time(
                    name, t
                )
                self._record(
                    report, "A8", ok, run_index, t,
                    f"received monotonicity for {name}@{lt}: {message}",
                )
            for name, lt, message in self._send_facts(run):
                premise = Said(Principal(name), Temporal.point(lt), message)
                if not truth(self.system, run, t, premise):
                    continue
                later = Said(Principal(name), Temporal.point(lt + 1), message)
                ok = truth(self.system, run, t, later) or lt + 1 > run.local_time(
                    name, t
                )
                self._record(
                    report, "A8", ok, run_index, t,
                    f"said monotonicity for {name}@{lt}",
                )
        return report

    def check_a9_reduction(self) -> SoundnessReport:
        """A9: (phi at_P t1) at_P t2, t2 >= t1 implies phi at_P t2."""
        report = self._report("A9")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run)[:10]:
                phi = Said(Principal(name), Temporal.point(lt), message)
                place = Principal(name)
                for t2 in (lt, lt + 1):
                    if t2 > run.local_time(name, t):
                        continue
                    nested = At(
                        At(phi, place, Temporal.point(lt)),
                        place,
                        Temporal.point(t2),
                    )
                    if not truth(self.system, run, t, nested):
                        continue
                    reduced = At(phi, place, Temporal.point(t2))
                    ok = truth(self.system, run, t, reduced)
                    self._record(
                        report, "A9", ok, run_index, t,
                        f"reduction for {name}: {phi} from {lt} to {t2}",
                    )
        return report

    def check_a10_originator_identification(self) -> SoundnessReport:
        """A10: good key + received signed message implies owner said it."""
        report = self._report("A10")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            key_owners = self._key_owner_map(run)
            for receiver, lt, message in self._receive_facts(run):
                if not isinstance(message, Signed):
                    continue
                owner = key_owners.get(message.key)
                if owner is None:
                    continue
                speaks = KeySpeaksFor(
                    message.key,
                    Temporal.point(lt, Principal(receiver)),
                    Principal(owner),
                )
                received = Received(
                    Principal(receiver), Temporal.point(lt), message
                )
                if not (
                    truth(self.system, run, t, speaks)
                    and truth(self.system, run, t, received)
                ):
                    continue
                said = Said(Principal(owner), Temporal.point(lt), message.body)
                ok = truth(self.system, run, t, said)
                self._record(
                    report, "A10", ok, run_index, t,
                    f"{receiver} received {message}, owner {owner}",
                )
        return report

    def check_a12_read_signed(self) -> SoundnessReport:
        """A12: receiving a signed message means receiving its body."""
        report = self._report("A12")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for receiver, lt, message in self._receive_facts(run):
                if not isinstance(message, Signed):
                    continue
                premise = Received(Principal(receiver), Temporal.point(lt), message)
                if not truth(self.system, run, t, premise):
                    continue
                body = Received(
                    Principal(receiver), Temporal.point(lt), message.body
                )
                ok = truth(self.system, run, t, body)
                self._record(
                    report, "A12", ok, run_index, t,
                    f"{receiver} reads body of {message}",
                )
        return report

    def check_a15_a16_projection(self) -> SoundnessReport:
        """A15/A16: saying a tuple is saying each component."""
        report = self._report("A15/A16")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run):
                if not isinstance(message, MessageTuple):
                    continue
                premise = Says(Principal(name), Temporal.point(lt), message)
                if not truth(self.system, run, t, premise):
                    continue
                for part in message.parts:
                    component = Says(Principal(name), Temporal.point(lt), part)
                    ok = truth(self.system, run, t, component)
                    self._record(
                        report, "A15/A16", ok, run_index, t,
                        f"{name} says component {part}",
                    )
        return report

    def check_a17_a18_responsibility(self) -> SoundnessReport:
        """A17/A18: saying a signed message means saying its content."""
        report = self._report("A17/A18")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run):
                if not isinstance(message, Signed):
                    continue
                premise = Says(Principal(name), Temporal.point(lt), message)
                if not truth(self.system, run, t, premise):
                    continue
                inner = Says(Principal(name), Temporal.point(lt), message.body)
                ok = truth(self.system, run, t, inner)
                self._record(
                    report, "A17/A18", ok, run_index, t,
                    f"{name} responsible for {message.body}",
                )
        return report

    def check_a19_a20_said_says(self) -> SoundnessReport:
        """A20: says at t implies said at t (and said implies earlier says)."""
        report = self._report("A19/A20")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run):
                says = Says(Principal(name), Temporal.point(lt), message)
                if not truth(self.system, run, t, says):
                    continue
                said = Said(Principal(name), Temporal.point(lt), message)
                ok = truth(self.system, run, t, said)
                self._record(
                    report, "A19/A20", ok, run_index, t,
                    f"says->said for {name}@{lt}",
                )
        return report

    def check_a21_freshness(self) -> SoundnessReport:
        """A21: a fresh component keeps composites fresh."""
        report = self._report("A21")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            never_said = Data("never-said-component")
            for lt in range(min(3, run.local_time(run.principals()[0], t))):
                premise = Fresh(never_said, Temporal.point(lt))
                if not truth(self.system, run, t, premise):
                    continue
                composite = MessageTuple((never_said, Data("padding")))
                conclusion = Fresh(composite, Temporal.point(lt))
                ok = truth(self.system, run, t, conclusion)
                self._record(
                    report, "A21", ok, run_index, t, f"freshness lift at {lt}"
                )
        return report

    def check_a22_jurisdiction(self) -> SoundnessReport:
        """A22/A23: controls + says implies at (semantic tautology check)."""
        report = self._report("A22/A23")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run):
                # Non-vacuous instances need a formula actually uttered:
                # the generator plants Said-formula messages for this.
                if not isinstance(message, Said):
                    continue
                subject = Principal(name)
                phi = message
                controls = Controls(subject, Temporal.point(lt), phi)
                says = Says(subject, Temporal.point(lt), phi)
                if not (
                    truth(self.system, run, t, controls)
                    and truth(self.system, run, t, says)
                ):
                    continue
                located = At(phi, subject, Temporal.point(lt))
                ok = truth(self.system, run, t, located)
                self._record(
                    report, "A22/A23", ok, run_index, t,
                    f"jurisdiction of {name} over {phi}",
                )
        return report

    def check_a24_a33_membership_jurisdiction(self) -> SoundnessReport:
        """A24-A33: jurisdiction instances whose content is membership.

        The generator plants membership-formula utterances; here the
        uttering principal's jurisdiction over that membership plus the
        utterance must yield the located membership.
        """
        report = self._report("A24-A33")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run):
                if not isinstance(message, SpeaksForGroup):
                    continue
                subject = Principal(name)
                controls = Controls(subject, Temporal.point(lt), message)
                says = Says(subject, Temporal.point(lt), message)
                if not (
                    truth(self.system, run, t, controls)
                    and truth(self.system, run, t, says)
                ):
                    continue
                located = At(message, subject, Temporal.point(lt))
                ok = truth(self.system, run, t, located)
                self._record(
                    report, "A24-A33", ok, run_index, t,
                    f"membership jurisdiction of {name} over {message}",
                )
        return report

    def check_a34_a38_group_membership(self) -> SoundnessReport:
        """A34/A38: membership + member utterances imply group utterances."""
        report = self._report("A34-A38")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            groups = [n for n in run.principals() if n.startswith("G")]
            members = [n for n in run.principals() if not n.startswith("G")]
            for group_name in groups:
                group = Group(group_name)
                for member in members:
                    subject = Principal(member)
                    for name, lt, message in self._send_facts(run):
                        if name != member:
                            continue
                        membership = SpeaksForGroup(
                            subject, Temporal.point(lt), group
                        )
                        payload = (
                            message.body
                            if isinstance(message, Signed)
                            else message
                        )
                        says = Says(subject, Temporal.point(lt), payload)
                        if not (
                            truth(self.system, run, t, membership)
                            and truth(self.system, run, t, says)
                        ):
                            continue
                        conclusion = Says(group, Temporal.point(lt), payload)
                        ok = truth(self.system, run, t, conclusion)
                        self._record(
                            report, "A34-A38", ok, run_index, t,
                            f"{member} => {group_name} lifts {payload}",
                        )
        return report

    def check_a1_a2_belief(self) -> SoundnessReport:
        """A1/A2: belief closure under implication and introspection."""
        report = self._report("A1/A2")
        for run_index, run in enumerate(self.system.runs):
            t = run.horizon
            for name, lt, message in self._send_facts(run)[:5]:
                subject = Principal(name)
                phi = Said(subject, Temporal.point(lt), message)
                belief = Believes(subject, Temporal.point(lt), phi)
                if not truth(self.system, run, t, belief):
                    continue
                # A2: introspection.
                nested = Believes(subject, Temporal.point(lt), belief)
                ok = truth(self.system, run, t, nested)
                self._record(
                    report, "A1/A2", ok, run_index, t,
                    f"introspection for {name}",
                )
                # A1: closure under a tautological implication phi -> phi.
                implication = Believes(
                    subject, Temporal.point(lt), Implies(phi, phi)
                )
                ok = (not truth(self.system, run, t, implication)) or truth(
                    self.system, run, t, belief
                )
                self._record(
                    report, "A1/A2", ok, run_index, t,
                    f"closure for {name}",
                )
        return report

    # ------------------------------------------------------------- util

    @staticmethod
    def _key_owner_map(run: Run) -> Dict[KeyRef, str]:
        """Key -> owner, from generate events (the honest-run discipline)."""
        final = run.at(run.horizon)
        owners: Dict[KeyRef, str] = {}
        for name in run.principals():
            for te in final.local(name).history.generates():
                if isinstance(te.event.message, KeyRef):
                    owners[te.event.message] = name
        return owners
