"""From a recorded network trace to a semantic Run.

Closes the loop between the *system* and the *model of computation*: a
network recorded with ``record_trace=True`` can be replayed into a
:class:`~repro.semantics.runs.Run`, whose legality is then checkable
and on which the truth conditions can be evaluated — so one can ask,
of a real protocol execution, whether the formulas the server derived
were actually *true* in the induced model.

Payload idealization: objects exposing an ``idealize()`` method
(certificates, :class:`~repro.coalition.requests.SignedRequestPart`)
become their logic forms; other payloads become opaque
:class:`~repro.core.messages.Data` constants.  Wire wrappers used by
:mod:`repro.coalition.netflow` are unwrapped to the interesting parts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.messages import Data
from ..sim.network import Network
from .events import History, Receive, Send, TimestampedEvent
from .runs import EnvironmentState, GlobalState, LocalState, Run

__all__ = ["idealize_payload", "run_from_trace"]


def idealize_payload(payload: object) -> object:
    """Map a wire payload to its logic message."""
    idealize = getattr(payload, "idealize", None)
    if callable(idealize):
        return idealize()
    # Unwrap coalition.netflow wire messages to their payloads.
    inner = getattr(payload, "payload", None)
    kind = getattr(payload, "kind", None)
    if kind is not None and inner is not None:
        if kind == "sign-response":
            return idealize_payload(inner)
        if kind == "access-request":
            # Idealize the whole joint request as the tuple of its parts
            # plus certificates — the multi-part Message 1 of §4.3.
            from ..core.messages import MessageTuple

            request = inner
            parts = [
                idealize_payload(c) for c in request.identity_certificates
            ]
            parts.append(idealize_payload(request.attribute_certificate))
            parts.extend(idealize_payload(p) for p in request.parts)
            return MessageTuple(tuple(parts))
        return Data(f"{kind}:{payload.request_id}")
    return Data(repr(payload))


def run_from_trace(
    network: Network, principals: Optional[Sequence[str]] = None
) -> Run:
    """Reconstruct a legal Run from a recorded network trace.

    Every sender/recipient in the trace becomes a principal (plus any
    extra ``principals`` supplied); sends and deliveries become history
    events at their recorded ticks.  The returned run spans tick 0 to
    the trace's last tick and satisfies the legality conditions by
    construction (deliveries in the trace always follow their sends).
    """
    if not network.record_trace:
        raise ValueError("network was not created with record_trace=True")
    trace = network.trace
    names = set(principals or ())
    horizon = network.clock.now
    for _kind, tick, envelope in trace:
        names.add(envelope.sender)
        names.add(envelope.recipient)
        horizon = max(horizon, tick)

    histories: Dict[str, List[TimestampedEvent]] = {n: [] for n in sorted(names)}
    for kind, tick, envelope in trace:
        message = idealize_payload(envelope.payload)
        if kind == "send":
            histories[envelope.sender].append(
                TimestampedEvent(Send(message, envelope.recipient), tick)
            )
        else:
            histories[envelope.recipient].append(
                TimestampedEvent(Receive(message), tick)
            )

    states: List[GlobalState] = []
    for tick in range(horizon + 1):
        locals_now = {}
        for name in sorted(names):
            events = [te for te in histories[name] if te.time <= tick]
            locals_now[name] = LocalState(
                name=name,
                time=tick,
                keys=frozenset(),
                history=History(events),
            )
        states.append(
            GlobalState(environment=EnvironmentState(time=tick), locals=locals_now)
        )
    return Run(states)
