"""Unilateral-administration baseline (prior work, e.g. SVE [23]).

Earlier coalition architectures assume every shared resource is owned
and administered by a *single* domain: that domain's attribute
authority issues certificates for it unilaterally, and other domains
simply trust the result.  This works for domain-owned resources but
violates Requirement III for jointly owned ones: the owning domain can
grant or revoke access without anyone's consent.

:class:`UnilateralAuthority` realizes that model so experiments can
contrast it directly with the Case I/Case II coalition authorities.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Sequence, Tuple

from ..crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair
from ..pki.certificates import (
    AttributeCertificate,
    ThresholdAttributeCertificate,
    ValidityPeriod,
)

__all__ = ["UnilateralAuthority"]


class UnilateralAuthority:
    """An AA fully controlled by one owner domain."""

    def __init__(self, owner_domain: str, key_bits: int = 512):
        self.owner_domain = owner_domain
        self.name = f"AA_{owner_domain}"
        self.keypair: RSAKeyPair = generate_keypair(bits=key_bits)
        self._serials = itertools.count(1)

    @property
    def public_key(self) -> RSAPublicKey:
        return self.keypair.public

    @property
    def key_id(self) -> str:
        return self.keypair.public.fingerprint()

    def issue_attribute(
        self,
        subject: str,
        subject_key_id: str,
        group: str,
        now: int,
        validity: ValidityPeriod,
    ) -> AttributeCertificate:
        """Unilateral issuance: no consent from anyone else required."""
        cert = AttributeCertificate(
            serial=f"{self.name}/uni-{next(self._serials):06d}",
            subject=subject,
            subject_key_id=subject_key_id,
            group=group,
            issuer=self.name,
            issuer_key_id=self.key_id,
            timestamp=now,
            validity=validity,
        )
        return replace(
            cert, signature=self.keypair.private.sign(cert.payload_bytes())
        )

    def issue_threshold_attribute(
        self,
        subjects: Sequence[Tuple[str, str]],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
    ) -> ThresholdAttributeCertificate:
        """Even threshold certificates are a unilateral act here."""
        cert = ThresholdAttributeCertificate(
            serial=f"{self.name}/uni-tac-{next(self._serials):06d}",
            subjects=tuple(tuple(s) for s in subjects),
            threshold=threshold,
            group=group,
            issuer=self.name,
            issuer_key_id=self.key_id,
            timestamp=now,
            validity=validity,
        )
        return replace(
            cert, signature=self.keypair.private.sign(cert.payload_bytes())
        )
