"""Baseline systems the paper argues against (or improves upon).

* :mod:`~repro.baselines.lockbox` — Case I: conventional AA key inside
  a hardware lockbox, with its API/insider attack surface.
* :mod:`~repro.baselines.unilateral` — prior-work single-owner AAs.
* :mod:`~repro.baselines.spki` — SPKI-style conjunction-of-certificates
  emulation of joint control, enforced in verifier policy.
"""

from .lockbox import CaseIAuthority, HardwareLockbox, LockboxAttack
from .spki import SPKIDomainAuthority, SPKIVerifier
from .unilateral import UnilateralAuthority

__all__ = [
    "CaseIAuthority",
    "HardwareLockbox",
    "LockboxAttack",
    "SPKIDomainAuthority",
    "SPKIVerifier",
    "UnilateralAuthority",
]
