"""Case I baseline: a conventional AA key in a hardware lockbox (§2.2).

Three administrators program a coalition AA to keep its conventional
private key inside a hardware lockbox (e.g. an IBM 4758) and to require
a joint cryptographic request — one password per domain — before any
private-key operation.  This satisfies the joint-administration
requirements *procedurally*, but carries the trust liabilities the
paper enumerates:

* the lockbox's cryptographic transaction set may be flawed (Anderson &
  Kuhn; Bond): an **API-level attack** can extract the clear key;
* a privileged **insider** with maintenance access can abuse the key
  repudiably;
* replicating the AA replicates the key, *amplifying* exposure.

:class:`CaseIAuthority` exposes both the honest joint-request path and
the attack paths, so experiments E8/E12 can measure when unilateral
certificate issuance becomes possible.  Contrast with
:class:`repro.coalition.authority.CoalitionAttributeAuthority`, where
no attack short of compromising *all* domains yields the key.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..crypto.rsa import RSAKeyPair, RSAPrivateKey, RSAPublicKey, generate_keypair
from ..pki.certificates import ThresholdAttributeCertificate, ValidityPeriod

__all__ = ["LockboxAttack", "HardwareLockbox", "CaseIAuthority"]


@dataclass(frozen=True)
class LockboxAttack:
    """An attempted key extraction and its outcome."""

    vector: str  # "api", "insider", "physical"
    attacker: str
    succeeded: bool


class HardwareLockbox:
    """A simulated tamper-resistant module holding one private key.

    ``api_flaw_probability`` models the chance that the device's
    transaction set contains an exploitable sequence (the formal
    verification gap the paper cites); once exploited the clear key is
    exposed to the attacker.
    """

    def __init__(
        self,
        keypair: RSAKeyPair,
        passwords: Dict[str, str],
        api_flaw_probability: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        self._keypair = keypair
        self._passwords = dict(passwords)
        self._api_flaw_probability = api_flaw_probability
        self._rng = rng or random.Random(0)
        self._extracted_by: Set[str] = set()
        self.attack_log: List[LockboxAttack] = []

    @property
    def public_key(self) -> RSAPublicKey:
        return self._keypair.public

    def joint_sign(self, payload: bytes, passwords: Dict[str, str]) -> int:
        """The honest path: sign only with every domain's password.

        Raises:
            PermissionError: a password is missing or wrong.
        """
        for domain, expected in self._passwords.items():
            if passwords.get(domain) != expected:
                raise PermissionError(
                    f"lockbox refuses: missing/invalid password for {domain}"
                )
        return self._keypair.private.sign(payload)

    def attempt_api_attack(self, attacker: str) -> bool:
        """Exploit a transaction-set flaw; success reveals the clear key."""
        succeeded = self._rng.random() < self._api_flaw_probability
        self.attack_log.append(
            LockboxAttack(vector="api", attacker=attacker, succeeded=succeeded)
        )
        if succeeded:
            self._extracted_by.add(attacker)
        return succeeded

    def insider_extract(self, attacker: str) -> bool:
        """A privileged maintenance insider reads the key.

        Always succeeds — the paper's point is that Case I *cannot*
        exclude this channel, only log it (repudiably).
        """
        self.attack_log.append(
            LockboxAttack(vector="insider", attacker=attacker, succeeded=True)
        )
        self._extracted_by.add(attacker)
        return True

    def stolen_private_key(self, attacker: str) -> Optional[RSAPrivateKey]:
        """The clear key, if this attacker previously extracted it."""
        if attacker in self._extracted_by:
            return self._keypair.private
        return None


class CaseIAuthority:
    """The Case I coalition AA: conventional key + lockbox + passwords."""

    def __init__(
        self,
        name: str,
        domain_names: Sequence[str],
        key_bits: int = 512,
        api_flaw_probability: float = 0.0,
        seed: int = 0,
    ):
        self.name = name
        self.domain_names = list(domain_names)
        keypair = generate_keypair(bits=key_bits)
        passwords = {d: f"pw-{d}-{seed}" for d in self.domain_names}
        self._passwords = passwords
        self.lockbox = HardwareLockbox(
            keypair,
            passwords,
            api_flaw_probability=api_flaw_probability,
            rng=random.Random(seed),
        )
        self._serials = itertools.count(1)

    @property
    def public_key(self) -> RSAPublicKey:
        return self.lockbox.public_key

    @property
    def key_id(self) -> str:
        return self.public_key.fingerprint()

    def password_of(self, domain: str) -> str:
        """A domain's own password (each domain knows only its own)."""
        return self._passwords[domain]

    def _build_certificate(
        self,
        subjects: Sequence[Tuple[str, str]],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
    ) -> ThresholdAttributeCertificate:
        return ThresholdAttributeCertificate(
            serial=f"{self.name}/case1-{next(self._serials):06d}",
            subjects=tuple(tuple(s) for s in subjects),
            threshold=threshold,
            group=group,
            issuer=self.name,
            issuer_key_id=self.key_id,
            timestamp=now,
            validity=validity,
        )

    def issue_with_consensus(
        self,
        subjects: Sequence[Tuple[str, str]],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
        passwords: Dict[str, str],
    ) -> ThresholdAttributeCertificate:
        """The honest path: all domains present their passwords."""
        cert = self._build_certificate(subjects, threshold, group, now, validity)
        signature = self.lockbox.joint_sign(cert.payload_bytes(), passwords)
        return replace(cert, signature=signature)

    def issue_unilaterally(
        self,
        attacker: str,
        subjects: Sequence[Tuple[str, str]],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
    ) -> Optional[ThresholdAttributeCertificate]:
        """The attack path: sign with a previously extracted key.

        Returns a *perfectly valid* certificate when the attacker holds
        the extracted key — the Requirement III violation that motivates
        Case II — or None when no extraction has succeeded.
        """
        private = self.lockbox.stolen_private_key(attacker)
        if private is None:
            return None
        cert = self._build_certificate(subjects, threshold, group, now, validity)
        return replace(cert, signature=private.sign(cert.payload_bytes()))
