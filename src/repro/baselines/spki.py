"""SPKI-style baseline: per-domain authorization certs, no shared key.

SPKI [10] and related systems grant privileges directly to public keys
and support threshold subjects — but there is *one issuer key per
certificate*.  Emulating joint administration therefore requires the
verifier to demand a **conjunction of certificates**, one from every
owner domain, and to enforce the conjunction in its own policy logic:

* message/verification cost grows linearly in the number of domains
  (n signatures to create, n chains to verify per request), versus one
  joint signature in Case II;
* the consensus property lives in *server configuration*, not
  cryptography: misconfiguring (or compromising) the verifier policy to
  accept n-1 certificates silently re-enables unilateral control;
* there is no multi-principal jurisdiction: no single certificate can
  state "the owners jointly authorize G".

:class:`SPKIVerifier` implements the conjunction check so benchmark E12
can compare certificate counts, bytes, and verification latency.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Dict, Sequence, Tuple

from ..crypto.rsa import RSAKeyPair, RSAPublicKey, generate_keypair
from ..pki.certificates import ThresholdAttributeCertificate, ValidityPeriod

__all__ = ["SPKIDomainAuthority", "SPKIVerifier"]


class SPKIDomainAuthority:
    """One domain's SPKI-style issuer (its own conventional key)."""

    def __init__(self, domain: str, key_bits: int = 512):
        self.domain = domain
        self.name = f"SPKI_{domain}"
        self.keypair: RSAKeyPair = generate_keypair(bits=key_bits)
        self._serials = itertools.count(1)

    @property
    def public_key(self) -> RSAPublicKey:
        return self.keypair.public

    def issue(
        self,
        subjects: Sequence[Tuple[str, str]],
        threshold: int,
        group: str,
        now: int,
        validity: ValidityPeriod,
    ) -> ThresholdAttributeCertificate:
        """This domain's *own* certificate for the grant."""
        cert = ThresholdAttributeCertificate(
            serial=f"{self.name}/spki-{next(self._serials):06d}",
            subjects=tuple(tuple(s) for s in subjects),
            threshold=threshold,
            group=group,
            issuer=self.name,
            issuer_key_id=self.keypair.public.fingerprint(),
            timestamp=now,
            validity=validity,
        )
        return replace(
            cert, signature=self.keypair.private.sign(cert.payload_bytes())
        )


class SPKIVerifier:
    """Enforces the all-domains conjunction in verifier policy.

    ``required_issuers`` maps issuer name -> trusted public key.  A
    grant is accepted only when a matching, valid certificate from
    *every* required issuer is presented.  The ``required`` set is plain
    mutable configuration — exactly the soft spot the paper's Case II
    removes by pushing consensus into the key itself.
    """

    def __init__(self, required_issuers: Dict[str, RSAPublicKey]):
        self.required_issuers = dict(required_issuers)
        self.verifications_performed = 0

    def accepts(
        self,
        certificates: Sequence[ThresholdAttributeCertificate],
        group: str,
        now: int,
    ) -> bool:
        """True when every required issuer vouches for the same grant."""
        seen: Dict[str, ThresholdAttributeCertificate] = {}
        reference: Tuple = ()
        for cert in certificates:
            key = self.required_issuers.get(cert.issuer)
            if key is None:
                continue
            self.verifications_performed += 1
            if not key.verify(cert.payload_bytes(), cert.signature):
                return False
            if not cert.validity.contains(now):
                return False
            grant = (cert.subjects, cert.threshold, cert.group)
            if not reference:
                reference = grant
            elif grant != reference:
                return False
            if cert.group != group:
                return False
            seen[cert.issuer] = cert
        return set(seen) == set(self.required_issuers)

    def certificates_required(self) -> int:
        return len(self.required_issuers)
