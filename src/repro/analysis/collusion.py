"""Collusion analysis: how many domains must collude to recover the key.

Two distinct bounds from the paper:

* **Share collusion**: the private exponent is additively shared
  n-of-n, so recovering it from shares requires *all n* domains'
  shares (any proper subset carries no information about ``d`` beyond
  the public data).  :func:`subset_recovers_key` *demonstrates* this on
  real key material: the sum of any proper subset fails to sign.
* **Keygen-transcript collusion**: the Boneh-Franklin protocol is
  ``(n-1)/2``-private — up to ``floor((n-1)/2)`` colluders learn
  nothing, while ``ceil((n+1)/2)`` colluders can recover the
  factorization (Section 6).  :func:`transcript_collusion_threshold`
  gives the bound; the simulation marks which coalition subsets breach
  it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import List, Sequence

from ..crypto.boneh_franklin import PrivateKeyShare, SharedRSAPublicKey
from ..crypto.hashing import full_domain_hash

__all__ = [
    "subset_recovers_key",
    "transcript_collusion_threshold",
    "CollusionSweep",
    "sweep_collusion",
]


def subset_recovers_key(
    shares: Sequence[PrivateKeyShare],
    subset_indices: Sequence[int],
    public_key: SharedRSAPublicKey,
    probe: bytes = b"collusion-probe",
) -> bool:
    """Can these colluders forge a signature from their shares alone?

    The colluders sum their shares (plus the public correction) and try
    to sign; only the full set yields a verifying signature.
    """
    chosen = [s for s in shares if s.index in set(subset_indices)]
    if not chosen:
        return False
    n = public_key.modulus
    h = full_domain_hash(probe, n)
    combined = 1
    for share in chosen:
        combined = (combined * share.partial_power(h)) % n
    candidate = (combined * pow(h, public_key.correction, n)) % n
    return public_key.verify(probe, candidate)


def transcript_collusion_threshold(n_domains: int) -> int:
    """Colluders needed to recover the factorization from the keygen
    transcript: ``ceil((n+1)/2)`` (the protocol is (n-1)/2-private)."""
    return math.ceil((n_domains + 1) / 2)


@dataclass
class CollusionSweep:
    """Outcome for one subset size k of an n-domain coalition."""

    n_domains: int
    colluders: int
    share_recovery: bool  # can k shares forge a joint signature?
    transcript_recovery: bool  # can k transcripts factor N?


def sweep_collusion(
    shares: Sequence[PrivateKeyShare],
    public_key: SharedRSAPublicKey,
    max_subsets_per_size: int = 5,
) -> List[CollusionSweep]:
    """For every collusion size, test share recovery empirically and
    report the transcript bound analytically (E9)."""
    n = len(shares)
    threshold = transcript_collusion_threshold(n)
    results = []
    for k in range(1, n + 1):
        share_recovery = False
        for subset in list(combinations(range(1, n + 1), k))[:max_subsets_per_size]:
            if subset_recovers_key(shares, subset, public_key):
                share_recovery = True
                break
        results.append(
            CollusionSweep(
                n_domains=n,
                colluders=k,
                share_recovery=share_recovery,
                transcript_recovery=k >= threshold,
            )
        )
    return results
