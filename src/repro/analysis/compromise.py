"""Trust-liability analysis: Case I vs Case II key-compromise exposure.

Section 2.2's argument, quantified.  The adversary compromises
individual hosts independently per campaign:

* **Case I** (conventional key in a lockbox): the AA private key falls
  if the lockbox is penetrated (probability ``p_lockbox``, covering the
  transaction-set attacks the paper cites), if any of the ``replicas``
  of the AA is penetrated, or if any of the ``n`` domains' privileged
  insiders goes rogue (``p_insider`` each).
* **Case II** (shared key): the key falls only if **all n domains** are
  penetrated (``p_domain`` each) — an insider must compromise the other
  n-1 domains.

Both analytic formulas and a seeded Monte-Carlo simulation are
provided; benchmark E8 reports the curves and their ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = [
    "CompromiseModel",
    "case1_compromise_probability",
    "case2_compromise_probability",
    "simulate_compromise",
    "CompromiseResult",
]


@dataclass(frozen=True)
class CompromiseModel:
    """Per-campaign compromise probabilities."""

    n_domains: int
    p_lockbox: float = 0.05
    p_insider: float = 0.01
    p_domain: float = 0.1
    replicas: int = 1  # Case I replication amplifies exposure

    def __post_init__(self) -> None:
        if self.n_domains < 1:
            raise ValueError("need at least one domain")
        for p in (self.p_lockbox, self.p_insider, self.p_domain):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must lie in [0, 1]")
        if self.replicas < 1:
            raise ValueError("need at least one replica")


def case1_compromise_probability(model: CompromiseModel) -> float:
    """P[key compromised] for the conventional-key design (analytic)."""
    survive_boxes = (1.0 - model.p_lockbox) ** model.replicas
    survive_insiders = (1.0 - model.p_insider) ** model.n_domains
    return 1.0 - survive_boxes * survive_insiders


def case2_compromise_probability(model: CompromiseModel) -> float:
    """P[key compromised] for the shared-key design (analytic)."""
    return model.p_domain ** model.n_domains


@dataclass
class CompromiseResult:
    """Monte-Carlo estimates alongside the analytic values."""

    model: CompromiseModel
    trials: int
    case1_estimate: float
    case2_estimate: float
    case1_analytic: float
    case2_analytic: float

    @property
    def liability_ratio(self) -> float:
        """How many times more exposed Case I is (inf when Case II ~ 0)."""
        if self.case2_analytic == 0.0:
            return float("inf")
        return self.case1_analytic / self.case2_analytic


def simulate_compromise(
    model: CompromiseModel, trials: int = 10_000, seed: int = 0
) -> CompromiseResult:
    """Monte-Carlo estimate of both designs' compromise probability."""
    rng = random.Random(seed)
    case1_hits = 0
    case2_hits = 0
    for _ in range(trials):
        # Case I: any lockbox replica or any insider.
        boxes = any(
            rng.random() < model.p_lockbox for _ in range(model.replicas)
        )
        insiders = any(
            rng.random() < model.p_insider for _ in range(model.n_domains)
        )
        if boxes or insiders:
            case1_hits += 1
        # Case II: all domains must fall.
        if all(rng.random() < model.p_domain for _ in range(model.n_domains)):
            case2_hits += 1
    return CompromiseResult(
        model=model,
        trials=trials,
        case1_estimate=case1_hits / trials,
        case2_estimate=case2_hits / trials,
        case1_analytic=case1_compromise_probability(model),
        case2_analytic=case2_compromise_probability(model),
    )


def sweep_coalition_size(
    sizes: List[int],
    p_lockbox: float = 0.05,
    p_insider: float = 0.01,
    p_domain: float = 0.1,
    trials: int = 5_000,
    seed: int = 0,
) -> List[CompromiseResult]:
    """E8's sweep: liability of both designs as the coalition grows."""
    results = []
    for n in sizes:
        model = CompromiseModel(
            n_domains=n,
            p_lockbox=p_lockbox,
            p_insider=p_insider,
            p_domain=p_domain,
        )
        results.append(simulate_compromise(model, trials=trials, seed=seed + n))
    return results
