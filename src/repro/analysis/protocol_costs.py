"""Analytic cost model of the protocols (messages and crypto operations).

The paper argues the shared-key design's operational costs are
"inconsequential relative to the frequency of subsequent accesses".
This module states the costs precisely so benchmarks and tests can
cross-check measured counters against them:

* joint signature (§3.2): ``2(n-1)`` point-to-point messages, ``n``
  partial exponentiations, one combination, one verification;
* joint access request (Figure 2): ``2c + 1`` messages for ``c``
  co-signers (round trip per co-signer plus the send to the server);
* authorization (server side): ``u + 1 + p`` signature verifications
  for ``u`` identity certificates, one threshold AC, and ``p`` request
  parts;
* share refresh: ``n(n-1)`` messages; re-keying: see
  :mod:`repro.analysis.dynamics_cost`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "joint_signature_messages",
    "joint_request_messages",
    "verification_operations",
    "issuance_cost",
    "IssuanceCost",
]


def joint_signature_messages(n_domains: int) -> int:
    """Messages for one §3.2 joint signature among ``n`` domains."""
    if n_domains < 1:
        raise ValueError("need at least one domain")
    return 2 * (n_domains - 1)


def joint_request_messages(co_signers: int) -> int:
    """Messages to assemble and deliver a joint access request."""
    if co_signers < 0:
        raise ValueError("co-signer count cannot be negative")
    return 2 * co_signers + 1


def verification_operations(
    identity_certificates: int, request_parts: int
) -> int:
    """Signature verifications per authorization decision.

    One per identity certificate, one for the threshold AC's joint
    signature, one per signed request part.
    """
    return identity_certificates + 1 + request_parts


@dataclass(frozen=True)
class IssuanceCost:
    """Cost of issuing one threshold attribute certificate."""

    messages: int
    partial_signatures: int
    combinations: int = 1
    verifications: int = 1

    @property
    def total_operations(self) -> int:
        return (
            self.messages
            + self.partial_signatures
            + self.combinations
            + self.verifications
        )


def issuance_cost(n_domains: int, threshold: int = 0) -> IssuanceCost:
    """Issuance cost: n-of-n joint signature, or m-of-n Shoup.

    With ``threshold == 0`` (or == n) the n-of-n §3.2 protocol is
    assumed; otherwise the Shoup path with ``threshold`` signature
    shares (the requestor collects shares from m-1 peers).
    """
    if threshold in (0, n_domains):
        return IssuanceCost(
            messages=joint_signature_messages(n_domains),
            partial_signatures=n_domains,
        )
    if not 1 <= threshold <= n_domains:
        raise ValueError("threshold out of range")
    return IssuanceCost(
        messages=2 * (threshold - 1),
        partial_signatures=threshold,
    )
