"""Availability analysis of joint signing (Section 3.3 / E10).

With n-of-n additive sharing, *every* domain must be on-line to apply a
joint signature; with m-of-n threshold sharing only m must be.  When
each domain is independently up with probability ``q``, signing
availability is

* n-of-n: ``q**n``
* m-of-n: ``sum_{k=m}^{n} C(n,k) q^k (1-q)^{n-k}`` (binomial tail)

The empirical check exercises real Shoup threshold keys with random
subsets of live domains.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..crypto.threshold import (
    ThresholdKey,
    combine_threshold_shares,
    generate_threshold_key,
    threshold_sign_share,
)

__all__ = [
    "n_of_n_availability",
    "m_of_n_availability",
    "AvailabilityPoint",
    "simulate_signing_availability",
]


def n_of_n_availability(n: int, q: float) -> float:
    """Probability all n domains are up."""
    return q**n


def m_of_n_availability(n: int, m: int, q: float) -> float:
    """Probability at least m of n domains are up (binomial tail)."""
    if not 1 <= m <= n:
        raise ValueError("threshold out of range")
    return sum(
        math.comb(n, k) * q**k * (1.0 - q) ** (n - k) for k in range(m, n + 1)
    )


@dataclass
class AvailabilityPoint:
    """One (n, m, q) sample: analytic vs simulated signing success."""

    n: int
    m: int
    q: float
    analytic: float
    simulated: float


def simulate_signing_availability(
    n: int,
    m: int,
    q: float,
    trials: int = 200,
    key: Optional[ThresholdKey] = None,
    seed: int = 0,
    key_bits: int = 96,
) -> AvailabilityPoint:
    """Monte-Carlo signing attempts with randomly up/down domains.

    Each trial marks domains up with probability ``q`` and attempts a
    real m-of-n threshold signature with the live subset.
    """
    rng = random.Random(seed)
    key = key or generate_threshold_key(n, m, bits=key_bits)
    message = b"availability-probe"
    successes = 0
    for _ in range(trials):
        live = [share for share in key.shares if rng.random() < q]
        if len(live) < m:
            continue
        sig_shares = [
            threshold_sign_share(message, share, key.public)
            for share in live[:m]
        ]
        signature = combine_threshold_shares(message, sig_shares, key.public)
        if key.public.verify(message, signature):
            successes += 1
    return AvailabilityPoint(
        n=n,
        m=m,
        q=q,
        analytic=m_of_n_availability(n, m, q),
        simulated=successes / trials,
    )
