"""Coalition-dynamics cost analysis (Section 6 / E11).

The paper leaves "a reasonable cost for coalition dynamics" as future
work; this module measures what its design implies.  A join or leave
forces (1) a fresh shared key, (2) revocation of every live threshold
certificate and (3) re-issuance, each re-issue being a joint signature
by all members.  A *refresh* (Wu et al.) re-randomizes shares without
any certificate churn — the contrast the benchmark reports.

The cost model is validated against actual :class:`~repro.coalition
.dynamics.Coalition` runs in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DynamicsCostModel", "predict_event_cost", "CostBreakdown"]


@dataclass(frozen=True)
class DynamicsCostModel:
    """Parameters of the analytic cost model."""

    n_domains: int  # membership size AFTER the event
    live_certificates: int  # threshold ACs alive at the event
    eligible_certificates: int  # those whose subjects all remain
    keygen_messages_per_round: int = 0  # 0 = derive from n
    keygen_rounds: int = 1


@dataclass(frozen=True)
class CostBreakdown:
    """Predicted operation counts for one membership-change event."""

    revocations: int
    reissues: int
    joint_signatures: int
    keygen_messages: int
    total: int


def predict_event_cost(model: DynamicsCostModel) -> CostBreakdown:
    """Predicted cost of one join/leave under the paper's design.

    * every live certificate is revoked;
    * every still-eligible certificate is re-issued with one joint
      signature (2(n-1) messages each in the §3.2 protocol);
    * key generation costs ``rounds * messages_per_round`` messages
      (the dealerless protocol's dominant term).
    """
    n = model.n_domains
    per_round = model.keygen_messages_per_round or n * (n - 1) * 4
    keygen_messages = model.keygen_rounds * per_round
    revocations = model.live_certificates
    reissues = model.eligible_certificates
    joint_signatures = reissues
    total = revocations + reissues + joint_signatures + keygen_messages
    return CostBreakdown(
        revocations=revocations,
        reissues=reissues,
        joint_signatures=joint_signatures,
        keygen_messages=keygen_messages,
        total=total,
    )


def refresh_cost(n_domains: int) -> int:
    """Messages for a proactive share refresh: n(n-1) zero-share sends.

    Constant in the certificate population — the key contrast with
    :func:`predict_event_cost`, whose total grows linearly with the
    number of live certificates.
    """
    return n_domains * (n_domains - 1)
