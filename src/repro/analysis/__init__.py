"""Quantitative analyses backing the benchmark suite.

* :mod:`~repro.analysis.compromise` — Case I vs Case II trust
  liability (E8).
* :mod:`~repro.analysis.collusion` — share- and transcript-collusion
  bounds (E9).
* :mod:`~repro.analysis.availability` — m-of-n vs n-of-n signing
  availability (E10).
* :mod:`~repro.analysis.dynamics_cost` — join/leave re-keying cost
  model (E11).
"""

from .availability import (
    AvailabilityPoint,
    m_of_n_availability,
    n_of_n_availability,
    simulate_signing_availability,
)
from .collusion import (
    CollusionSweep,
    subset_recovers_key,
    sweep_collusion,
    transcript_collusion_threshold,
)
from .compromise import (
    CompromiseModel,
    CompromiseResult,
    case1_compromise_probability,
    case2_compromise_probability,
    simulate_compromise,
    sweep_coalition_size,
)
from .dynamics_cost import (
    CostBreakdown,
    DynamicsCostModel,
    predict_event_cost,
    refresh_cost,
)

__all__ = [
    "AvailabilityPoint",
    "m_of_n_availability",
    "n_of_n_availability",
    "simulate_signing_availability",
    "CollusionSweep",
    "subset_recovers_key",
    "sweep_collusion",
    "transcript_collusion_threshold",
    "CompromiseModel",
    "CompromiseResult",
    "case1_compromise_probability",
    "case2_compromise_probability",
    "simulate_compromise",
    "sweep_coalition_size",
    "CostBreakdown",
    "DynamicsCostModel",
    "predict_event_cost",
    "refresh_cost",
]
