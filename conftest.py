"""Repo-root pytest plugin: a hang guard that works without pytest-timeout.

CI installs ``pytest-timeout`` (see the ``[test]`` extras) and enforces
the ``timeout`` ini option natively.  Offline environments without the
plugin would otherwise warn about the unknown option and — worse —
hang forever on exactly the class of bug the option guards against (a
dead shard worker stranding ``drain()``), so when the plugin is absent
this conftest registers the option itself and enforces it with a
SIGALRM timer around each test call.  The fallback covers the common
case (blocked main thread on a POSIX platform); the real plugin, when
installed, takes precedence and this file stays inert.
"""

import importlib.util
import signal

import pytest

_HAVE_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None
_CAN_ALARM = hasattr(signal, "SIGALRM")


def pytest_addoption(parser):
    if _HAVE_TIMEOUT_PLUGIN:
        return
    parser.addini(
        "timeout",
        "per-test hang guard in seconds (fallback for pytest-timeout)",
        default="0",
    )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if _HAVE_TIMEOUT_PLUGIN or not _CAN_ALARM:
        yield
        return
    seconds = _timeout_for(item)
    if seconds <= 0:
        yield
        return

    def _on_alarm(signum, frame):
        pytest.fail(
            f"hang guard: test ran past {seconds:.0f}s "
            f"(see the `timeout` ini option)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
