#!/usr/bin/env python3
"""Coalition dynamics and their cost (Section 6 / experiment E11).

Joins and leaves force a fresh shared key plus mass revocation and
re-issuance of threshold certificates; a proactive refresh (Wu et al.)
re-randomizes shares at constant cost.  This example runs real
membership changes at growing certificate populations and prints the
measured vs predicted costs side by side.

Run:  python examples/coalition_dynamics.py
"""

from repro.analysis.dynamics_cost import (
    DynamicsCostModel,
    predict_event_cost,
    refresh_cost,
)
from repro.coalition import Coalition, Domain
from repro.pki import ValidityPeriod


def build_coalition(n_certs: int):
    domains = [Domain(f"D{i}", key_bits=256) for i in range(1, 4)]
    users = [d.register_user(f"user{i}", now=0) for i, d in enumerate(domains)]
    coalition = Coalition(f"dyn-{n_certs}", key_bits=256)
    coalition.form(domains)
    for k in range(n_certs):
        coalition.authority.issue_threshold_certificate(
            users, 2, f"G{k}", 0, ValidityPeriod(0, 10_000)
        )
    return coalition, domains


def main() -> None:
    print("cost of one JOIN as the live-certificate population grows")
    print(f"{'certs':>6} {'revoked':>8} {'reissued':>9} "
          f"{'predicted-total':>16} {'measured-total':>15}")
    for n_certs in (1, 5, 10, 20):
        coalition, _domains = build_coalition(n_certs)
        live = len(coalition.authority.live_certificates(0))
        report = coalition.join(Domain("D_new", key_bits=256), now=1)
        predicted = predict_event_cost(
            DynamicsCostModel(
                n_domains=4,
                live_certificates=live,
                eligible_certificates=live,
                keygen_messages_per_round=report.keygen_messages,
            )
        )
        print(
            f"{n_certs:>6} {report.certificates_revoked:>8} "
            f"{report.certificates_reissued:>9} {predicted.total:>16} "
            f"{report.total_operations():>15}"
        )

    print("\ncontrast: proactive refresh cost is constant in the cert count")
    coalition, _domains = build_coalition(20)
    report = coalition.refresh(now=1)
    print(f"refresh of 3-domain coalition: {report.keygen_messages} messages "
          f"(analytic: {refresh_cost(3)}), 0 certificates churned")

    print("\na LEAVE drops certificates naming the leaver's users:")
    coalition, domains = build_coalition(5)
    report = coalition.leave(domains[1], now=1)
    print(f"  revoked={report.certificates_revoked} "
          f"reissued={report.certificates_reissued} "
          f"dropped={report.certificates_dropped}")
    print("  (every certificate named a user of every domain, so all drop;")
    print("   access must be re-granted by consensus of the remaining members)")


if __name__ == "__main__":
    main()
