#!/usr/bin/env python3
"""A day of coalition operations: network flows, CRL sync, audit trail.

Integration showcase tying the extension subsystems together:

1. joint access requests travel over the simulated network (with an
   environment that replays messages);
2. the server periodically pulls revocations from the coalition
   directory instead of waiting for pushes;
3. every decision lands in a hash-chained, signed audit log that an
   auditor verifies at end of day — including proof digests that match
   the retained derivations.

Run:  python examples/operations_day.py
"""

from repro.coalition import (
    ACLEntry,
    AuditLog,
    Coalition,
    CoalitionServer,
    DirectoryNode,
    DirectorySyncClient,
    Domain,
    NetworkedAccessFlow,
)
from repro.pki import ValidityPeriod
from repro.sim.clock import GlobalClock
from repro.sim.network import AdversaryPolicy, Network


def main() -> None:
    # --- morning: infrastructure up -------------------------------------
    domains = [Domain(f"D{i}", key_bits=256) for i in (1, 2, 3)]
    users = [
        d.register_user(f"operator_{d.name}", now=0) for d in domains
    ]
    coalition = Coalition("ops", key_bits=256)
    coalition.form(domains)
    server = CoalitionServer("OpsServer")
    coalition.attach_server(server)
    server.create_object(
        "mission-state", b"phase-0",
        [ACLEntry.of("G_ops", ["write", "read"])], "G_command",
    )

    clock = GlobalClock()
    network = Network(
        clock, base_delay=1, adversary=AdversaryPolicy(replay_rate=0.3, seed=9)
    )
    flow = NetworkedAccessFlow(network, server)
    directory = DirectoryNode("Directory", coalition.authority.directory, network)
    crl_client = DirectorySyncClient(server, "Directory", network)
    audit_log = AuditLog()

    def dispatch(envelope):
        if envelope.recipient == "Directory":
            directory.handle(envelope)
        elif envelope.recipient == server.name:
            crl_client.handle(envelope)
            flow.dispatch(envelope)
        else:
            flow.dispatch(envelope)

    cert = coalition.authority.issue_threshold_certificate(
        users, 2, "G_ops", now=0, validity=ValidityPeriod(0, 10_000)
    )
    print(f"certificate {cert.serial} issued (2-of-3 => G_ops)")

    # --- working hours: three joint updates over the wire ---------------
    request_ids = []
    for phase in (1, 2, 3):
        request_id = flow.start(
            users[phase % 3], [users[(phase + 1) % 3]],
            "write", "mission-state", cert,
            write_content=f"phase-{phase}".encode(),
            tag=f"phase{phase}",
        )
        request_ids.append(request_id)
        network.run_until_quiet(dispatch)
    for request_id in request_ids:
        result = flow.result_of(request_id)
        print(f"  {request_id.split(':')[-1]}: granted={result.result.granted} "
              f"in {result.ticks_elapsed} ticks")
    print(f"network: {network.sent_count} messages sent, "
          f"{network.replayed_count} replayed by the adversary")

    # Log everything decided so far.
    for decision in server.access_log:
        audit_log.append(decision)

    # --- afternoon: the certificate is revoked; server pulls the CRL ----
    coalition.authority.revoke_certificate(cert, now=clock.now)
    print(f"\ncertificate revoked at tick {clock.now} (directory only)")
    crl_client.request_sync()
    network.run_until_quiet(dispatch)
    print(f"CRL sync applied {crl_client.revocations_applied} revocation(s); "
          f"staleness={crl_client.staleness()} ticks")

    denied_id = flow.start(
        users[0], [users[1]], "write", "mission-state", cert,
        write_content=b"phase-4", tag="after-revocation",
    )
    network.run_until_quiet(dispatch)
    denied = flow.result_of(denied_id)
    print(f"post-revocation write: granted={denied.result.granted}")
    audit_log.append(denied.result.decision)

    # --- end of day: the auditor verifies the trail ----------------------
    audit_log.verify()
    granted = sum(1 for e in audit_log.entries() if e.granted)
    print(f"\naudit log verified: {len(audit_log)} chained entries, "
          f"{granted} grants, signed by key {audit_log.public_key.fingerprint()}")
    for entry in audit_log.entries():
        flag = "GRANT" if entry.granted else "DENY "
        print(f"  #{entry.sequence} t={entry.timestamp:>3} {flag} "
              f"{entry.operation} {entry.object_name}")


if __name__ == "__main__":
    main()
