#!/usr/bin/env python3
"""A five-nation military coalition with m-of-n availability trade-offs.

Motivated by the paper's military references (Gibson [11]) and Section
3.3: with five member nations, requiring all five to be on-line for
every joint signature hurts availability, so the coalition weighs
n-of-n consensus against m-of-n threshold sharing.

This example:

1. forms a 5-domain coalition (route-planning + logistics objects),
2. measures joint-signature availability empirically for 5-of-5 vs
   3-of-5 sharing as domains go down for maintenance,
3. shows a jointly owned *auditing application* whose log is
   append-only via the authorization protocol,
4. exercises a leave (a nation withdraws) and shows operations continue
   — Requirement I's continuity property.

Run:  python examples/military_coalition.py
"""

from repro.analysis.availability import m_of_n_availability, n_of_n_availability
from repro.coalition import (
    ACLEntry,
    Coalition,
    CoalitionServer,
    ConsensusError,
    Domain,
    build_joint_request,
)
from repro.pki import ValidityPeriod

NATIONS = ["US", "UK", "FR", "AU", "CA"]


def main() -> None:
    # --- coalition formation -------------------------------------------
    domains = [Domain(nation, key_bits=256) for nation in NATIONS]
    officers = [
        domain.register_user(f"officer_{domain.name}", now=0)
        for domain in domains
    ]
    coalition = Coalition("task-force", key_bits=256)
    coalition.form(domains)

    ops_server = CoalitionServer("OpsServer")
    coalition.attach_server(ops_server)
    ops_server.create_object(
        "route-plan",
        b"route: alpha -> bravo",
        [ACLEntry.of("G_planners", ["write", "read"])],
        admin_group="G_command",
    )
    ops_server.create_object(
        "audit-log",
        b"",
        [ACLEntry.of("G_auditors", ["write"]), ACLEntry.of("G_auditors", ["read"])],
        admin_group="G_command",
    )

    aa = coalition.authority
    planners_cert = aa.issue_threshold_certificate(
        officers, 3, "G_planners", 1, ValidityPeriod(1, 100_000)
    )
    auditors_cert = aa.issue_threshold_certificate(
        officers, 2, "G_auditors", 1, ValidityPeriod(1, 100_000)
    )
    print(f"coalition of {len(NATIONS)} formed; planners need 3-of-5 sign-off")

    # --- mission updates --------------------------------------------------
    update = build_joint_request(
        officers[0], officers[1:3], "write", "route-plan", planners_cert, now=5
    )
    granted = ops_server.handle_request(
        update, now=6, write_content=b"route: alpha -> charlie (weather)"
    )
    print(f"route update by US+UK+FR: granted={granted.granted}")

    # Jointly owned auditing application: every audit entry needs two
    # nations, so no single nation can rewrite history alone.
    audit = build_joint_request(
        officers[3], [officers[4]], "write", "audit-log", auditors_cert, now=7
    )
    ops_server.handle_request(
        audit, now=8, write_content=b"[t8] route-plan updated with consensus"
    )
    print("audit entry appended with AU+CA attestation")

    # --- availability analysis (Section 3.3) ------------------------------
    print("\njoint-signature availability when each nation is up with prob q:")
    print(f"{'q':>6} {'5-of-5':>10} {'3-of-5':>10}")
    for q in (0.99, 0.95, 0.90, 0.80):
        print(
            f"{q:>6} {n_of_n_availability(5, q):>10.4f} "
            f"{m_of_n_availability(5, 3, q):>10.4f}"
        )
    print("(3-of-5 sharing keeps signing available, at the cost of")
    print(" weakening the all-owners-consent requirement -- Section 3.3)")

    # Issuance needs everyone: simulate a nation down for maintenance.
    domains[2].cooperative = False  # FR offline
    try:
        aa.issue_threshold_certificate(
            officers, 3, "G_planners", 9, ValidityPeriod(9, 100)
        )
    except ConsensusError:
        print("\nFR offline -> no new certificates (n-of-n issuance stalls)")
    domains[2].cooperative = True

    # --- a nation withdraws ------------------------------------------------
    leaver = domains[4]  # CA leaves the task force
    report = coalition.leave(leaver, now=20)
    print(
        f"\n{leaver.name} leaves: re-keyed, {report.certificates_revoked} certs "
        f"revoked, {report.certificates_reissued} re-issued, "
        f"{report.certificates_dropped} dropped (named the leaver's users)"
    )

    # Operations continue among the remaining four nations.
    remaining_officers = officers[:4]
    new_cert = coalition.authority.issue_threshold_certificate(
        remaining_officers, 3, "G_planners", 21, ValidityPeriod(21, 100_000)
    )
    post = build_joint_request(
        remaining_officers[0], remaining_officers[1:3], "write",
        "route-plan", new_cert, now=22,
    )
    still_works = ops_server.handle_request(
        post, now=23, write_content=b"route: alpha -> delta"
    )
    print(f"post-withdrawal route update: granted={still_works.granted}")
    print("coalition operations continue (Requirement I)")


if __name__ == "__main__":
    main()
