#!/usr/bin/env python3
"""Quickstart: the paper's Figure 1/Figure 2 scenario in ~60 lines.

Three autonomous domains form a coalition, jointly generate the
coalition attribute authority's shared RSA key, issue a 2-of-3
threshold attribute certificate, and exercise the Section 4.3
authorization protocol against coalition server P.

Run:  python examples/quickstart.py
"""

from repro.coalition import (
    ACLEntry,
    Coalition,
    CoalitionServer,
    Domain,
    build_joint_request,
)
from repro.core.proofs import render_proof
from repro.pki import ValidityPeriod


def main() -> None:
    # --- Figure 1: three domains, each with its own identity CA -------
    domains = [Domain(name, key_bits=256) for name in ("D1", "D2", "D3")]
    users = [
        domain.register_user(f"User_{domain.name}", now=0)
        for domain in domains
    ]

    # Coalition formation: the domains jointly generate the AA's shared
    # key; each ends up holding one additive share of the private key.
    coalition = Coalition("quickstart", key_bits=256)
    coalition.form(domains)
    print(f"coalition AA key: {coalition.authority.key_id}")
    print(f"shares held by:   {coalition.authority.member_names()}")

    # Server P trusts the coalition AA and every domain CA.
    server = CoalitionServer("ServerP")
    coalition.attach_server(server)
    server.create_object(
        "ObjectO",
        b"jointly owned research data",
        [ACLEntry.of("G_write", ["write"]), ACLEntry.of("G_read", ["read"])],
        admin_group="G_admin",
    )

    # --- Figure 2(a): a 2-of-3 threshold AC for writes ----------------
    # Issuance REQUIRES all three domains to co-sign (consensus).
    tac = coalition.authority.issue_threshold_certificate(
        subjects=users,
        threshold=2,
        group="G_write",
        now=1,
        validity=ValidityPeriod(1, 1_000),
    )
    print(f"\nissued {tac.serial}: 2-of-3 can write ObjectO")

    # --- Figure 2(b): a joint write request ----------------------------
    request = build_joint_request(
        requestor=users[0],
        co_signers=[users[1]],
        operation="write",
        object_name="ObjectO",
        attribute_certificate=tac,
        now=2,
    )
    result = server.handle_request(request, now=3, write_content=b"revised data")
    print(f"write by {request.signer_names()}: granted={result.granted}")

    # A lone requestor is denied: the threshold is not met.
    solo = build_joint_request(users[0], [], "write", "ObjectO", tac, now=4)
    denied = server.handle_request(solo, now=5, write_content=b"unilateral")
    print(f"write by [{users[0].name}] alone: granted={denied.granted}"
          f"  ({denied.decision.reason})")

    # --- the proof: the Appendix E derivation for this decision --------
    print("\nderivation for the granted write (Appendix E chain):")
    print(render_proof(result.decision.proof))


if __name__ == "__main__":
    main()
