#!/usr/bin/env python3
"""The paper's motivating alliance: genetics firm + hospital + pharma.

Section 1's scenario, end to end:

* GeneCo discovered a gene sequence; it allies with MercyHospital and
  PharmaCorp to find a cure.  All research data is jointly owned.
* No single member may administer access policies unilaterally; every
  policy act needs consensus, enforced by the shared AA key.
* Research writes need two organizations' sign-off; reads need one.
* Policy-object updates (ACL changes) go through the same machinery,
  using a 3-of-3 admin certificate.
* When PharmaCorp's certificate is abused, the alliance revokes it and
  the revocation defeats in-flight trust ("believe until revoked").

Run:  python examples/genetics_alliance.py
"""

from repro.coalition import (
    ACLEntry,
    Coalition,
    CoalitionServer,
    ConsensusError,
    Domain,
    build_joint_request,
)
from repro.crypto.rsa import hybrid_decrypt
from repro.pki import ValidityPeriod


def main() -> None:
    # --- alliance formation -------------------------------------------
    geneco = Domain("GeneCo", key_bits=256)
    hospital = Domain("MercyHospital", key_bits=256)
    pharma = Domain("PharmaCorp", key_bits=256)

    alice = geneco.register_user("alice", now=0)       # genetics lead
    bob = hospital.register_user("bob", now=0)         # trial physician
    carol = pharma.register_user("carol", now=0)       # drug designer

    alliance = Coalition("cure-alliance", key_bits=256)
    alliance.form([geneco, hospital, pharma])
    print("alliance formed; AA private key shared across all three members")

    web_server = CoalitionServer("ResearchWebServer")
    alliance.attach_server(web_server)
    web_server.create_object(
        "gene-sequence",
        b"ATCGATCG... (proprietary sequence)",
        [
            ACLEntry.of("G_researchers_rw", ["write"]),
            ACLEntry.of("G_researchers_ro", ["read"]),
        ],
        admin_group="G_policy_admins",
    )
    web_server.create_object(
        "trial-results",
        b"(no results yet)",
        [
            ACLEntry.of("G_researchers_rw", ["write"]),
            ACLEntry.of("G_researchers_ro", ["read"]),
        ],
        admin_group="G_policy_admins",
    )

    aa = alliance.authority
    researchers = [alice, bob, carol]

    # Writing research data: two organizations must agree (2-of-3).
    rw_cert = aa.issue_threshold_certificate(
        researchers, 2, "G_researchers_rw", 1, ValidityPeriod(1, 10_000)
    )
    # Reading: any one researcher (1-of-3).
    ro_cert = aa.issue_threshold_certificate(
        researchers, 1, "G_researchers_ro", 1, ValidityPeriod(1, 10_000)
    )
    # Policy administration: unanimous (3-of-3).
    admin_cert = aa.issue_threshold_certificate(
        researchers, 3, "G_policy_admins", 1, ValidityPeriod(1, 10_000)
    )
    print("certificates issued: rw(2-of-3), ro(1-of-3), admin(3-of-3)")

    # --- day-to-day research access ------------------------------------
    write = build_joint_request(
        alice, [bob], "write", "trial-results", rw_cert, now=10
    )
    result = web_server.handle_request(
        write, now=11, write_content=b"cohort A: promising response"
    )
    print(f"\nalice+bob write trial-results: granted={result.granted}")

    read = build_joint_request(carol, [], "read", "trial-results", ro_cert, now=12)
    response = web_server.handle_request(
        read, now=13, responder_key=carol.keypair.public
    )
    wrapped, ciphertext = response.encrypted_response
    plaintext = hybrid_decrypt(carol.keypair.private, wrapped, ciphertext)
    print(f"carol reads (encrypted under her key): {plaintext.decode()!r}")

    # A lone write is refused — Requirement III in action.
    lone = build_joint_request(carol, [], "write", "trial-results", rw_cert, now=14)
    refused = web_server.handle_request(lone, now=15, write_content=b"oops")
    print(f"carol writes alone: granted={refused.granted}")

    # --- a policy change needs unanimity --------------------------------
    update = build_joint_request(
        alice, [bob, carol], "set_policy", "gene-sequence", admin_cert, now=20
    )
    decision = web_server.update_policy(
        update,
        [
            ACLEntry.of("G_researchers_rw", ["write", "read"]),
        ],
        now=21,
    )
    print(f"\nunanimous ACL update on gene-sequence: granted={decision.granted}")
    print("  (read-only group removed: reads now need the rw certificate)")

    # --- a member tries to out-vote the others at issuance time ---------
    pharma.cooperative = False
    try:
        aa.issue_threshold_certificate(
            [carol], 1, "G_researchers_rw", 22, ValidityPeriod(22, 10_000)
        )
    except ConsensusError as exc:
        print(f"\nPharmaCorp dissents -> issuance impossible: {exc}")
    pharma.cooperative = True

    # --- revocation ------------------------------------------------------
    revocation = aa.revoke_certificate(rw_cert, now=30)
    web_server.receive_revocation(revocation, now=31)
    stale = build_joint_request(
        alice, [bob], "write", "trial-results", rw_cert, now=32
    )
    blocked = web_server.handle_request(stale, now=32, write_content=b"late")
    print(f"\nwrite with revoked certificate: granted={blocked.granted}")
    print(f"  reason: {blocked.decision.reason}")

    # Access statistics for the session.
    print(f"\nserver grant rate: {web_server.grant_rate():.0%} "
          f"over {len(web_server.access_log)} decisions")


if __name__ == "__main__":
    main()
