#!/usr/bin/env python3
"""Logic playground: the derivation engine and concrete syntax directly.

Shows the library as a *logic tool* rather than a system: write the
paper's initial beliefs and certificates in the concrete syntax, run
the derivation, print and independently audit the proof.

Run:  python examples/logic_playground.py
"""

from repro.core import (
    DerivationEngine,
    Principal,
    check_proof,
    parse_formula,
    render_proof,
    to_text,
)
from repro.core.formulas import Controls, Says
from repro.core.patterns import AnyTime
from repro.core.terms import Var


def main() -> None:
    server = Principal("ServerP")
    engine = DerivationEngine(server)

    # --- initial beliefs, written in the concrete syntax ----------------
    # Statement 1-analogue: the CA's key, trusted open-endedly.
    engine.believe(parse_formula("#kca =>:[0,*]^ServerP CA1"), "CA1 key")
    # AA's key (conventional here, to keep the playground small).
    engine.believe(parse_formula("#kaa =>:[0,*]^ServerP AA"), "AA key")

    # Jurisdiction schemas still use pattern variables (Var/AnyTime):
    id_schema = parse_formula("#k =>:[0,*] Q")  # template shape...
    # ...whose concrete Var form we build directly:
    from repro.core.formulas import KeySpeaksFor, SpeaksForGroup
    from repro.core.temporal import FOREVER, Temporal

    id_schema = KeySpeaksFor(Var("k"), AnyTime("iv"), Var("q"))
    membership_schema = SpeaksForGroup(Var("s"), AnyTime("iv"), Var("g"))
    for issuer, schema in (("CA1", id_schema), ("AA", membership_schema)):
        principal = Principal(issuer)
        engine.believe(Controls(principal, Temporal.all(0, FOREVER), schema))
        engine.believe(
            Controls(
                principal,
                Temporal.all(0, FOREVER, server),
                Says(principal, AnyTime("t"), schema),
            )
        )

    # --- certificates, written in the concrete syntax -------------------
    id_cert = parse_formula(
        'sig(CA1 says:2 (#ku =>:[1,100] Alice), #kca)'
    )
    attribute_cert = parse_formula(
        'sig(AA says:3 (Alice|#ku =>:[1,100] @G_read), #kaa)'
    )
    request = parse_formula('sig(Alice says:4 ("read O"), #ku)')

    print("identity certificate :", to_text(id_cert))
    print("attribute certificate:", to_text(attribute_cert))
    print("signed request       :", to_text(request))

    # --- the derivation ---------------------------------------------------
    engine.admit_certificate(id_cert, received_at=5)
    membership = engine.admit_certificate(attribute_cert, received_at=5)
    says_body, _says_signed = engine.admit_signed_utterance(request, received_at=6)

    # Alice|#ku => @G_read is key-bound membership: axiom A35 applies,
    # and it wants the *signed* utterance.
    _body, says_signed = engine.admit_signed_utterance(request, received_at=6)
    conclusion = engine.derive_group_says(membership, [says_signed])
    print("\nconclusion:", to_text(conclusion.conclusion))
    print("\nproof:")
    print(render_proof(conclusion))

    # --- independent audit ------------------------------------------------
    ok = check_proof(
        conclusion,
        trusted_premises=set(engine.store.snapshot()),
    )
    print(f"\nindependent proof check: {ok}")


if __name__ == "__main__":
    main()
