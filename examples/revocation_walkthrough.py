#!/usr/bin/env python3
"""Revocation reasoning walkthrough (Section 4.3, Message 2).

Reproduces the believe-until-revoked timeline with the actual proof
objects: the belief obtained from the threshold certificate, the
revocation admission through the RA's jurisdiction, and the defeated
re-derivation.

Run:  python examples/revocation_walkthrough.py
"""

from repro.coalition import (
    ACLEntry,
    Coalition,
    CoalitionServer,
    Domain,
    build_joint_request,
)
from repro.core.proofs import render_proof
from repro.pki import ValidityPeriod


def main() -> None:
    domains = [Domain(f"D{i}", key_bits=256) for i in (1, 2, 3)]
    users = [
        d.register_user(f"User_D{i}", now=0)
        for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition("revocation-demo", key_bits=256)
    coalition.form(domains)
    server = CoalitionServer("ServerP")
    coalition.attach_server(server)
    server.create_object(
        "ObjectO", b"v1", [ACLEntry.of("G_write", ["write"])], "G_admin"
    )

    tac = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", now=1, validity=ValidityPeriod(1, 1_000)
    )
    print(f"t=1   AA issues {tac.serial} (2-of-3 => G_write)")

    request = build_joint_request(
        users[0], [users[1]], "write", "ObjectO", tac, now=4
    )
    result = server.handle_request(request, now=4, write_content=b"v2")
    print(f"t=4   joint write: granted={result.granted}")
    print("      belief obtained (statement 10):",
          result.decision.proof.premises[0].conclusion)

    # Message 2: the revocation authority revokes on behalf of AA.
    revocation = coalition.authority.revoke_certificate(tac, now=7)
    print(f"\nt=7   RA publishes revocation {revocation.serial}")
    proof = server.protocol.apply_revocation(revocation, now=8)
    print("t=8   server admits the revocation; derived belief:")
    print(render_proof(proof))

    # For decision times t >= t8 the old belief is no longer obtainable.
    stale = build_joint_request(
        users[0], [users[1]], "write", "ObjectO", tac, now=9
    )
    denied = server.handle_request(stale, now=9, write_content=b"v3")
    print(f"\nt=9   same certificate, same signers: granted={denied.granted}")
    print(f"      {denied.decision.reason}")

    # Re-granting requires a fresh certificate — i.e. fresh consensus.
    fresh = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", now=10, validity=ValidityPeriod(10, 1_000)
    )
    again = build_joint_request(
        users[0], [users[1]], "write", "ObjectO", fresh, now=11
    )
    regranted = server.handle_request(again, now=11, write_content=b"v3")
    print(f"\nt=11  fresh certificate (new consensus): granted={regranted.granted}")


if __name__ == "__main__":
    main()
