"""E7 — shared key generation vs joint signature latency (Section 3.1).

The paper cites Malkin et al.: generating a shared key among three
servers takes 1.5-5 minutes on average while applying a joint signature
takes only 1.2-2 seconds — keygen is ~2 orders of magnitude costlier,
which is why the paper deems keygen cost acceptable for the infrequent
policy-change events it serves.

We reproduce the *shape* on our pure-Python substrate: dealerless
Boneh-Franklin keygen vs the §3.2 joint-signature protocol, at matched
modulus sizes.  Absolute times differ from the 1999 testbed (different
hardware, interpreted bignums, smaller moduli); the ratio is the result
(see EXPERIMENTS.md).  The final test prints the paper-style summary row.
"""

import pytest

from repro.crypto.boneh_franklin import dealer_shared_rsa, generate_shared_rsa
from repro.crypto.joint_signature import CoSigner, JointSignatureSession

RATIO_SAMPLES = {}


def test_e7_dealerless_keygen_128(benchmark):
    """Boneh-Franklin 3-party keygen at 128-bit modulus."""
    benchmark.pedantic(
        lambda: generate_shared_rsa(3, bits=128), rounds=2, iterations=1
    )
    if benchmark.stats is not None:  # absent under --benchmark-disable
        RATIO_SAMPLES["keygen_128"] = benchmark.stats.stats.mean


@pytest.mark.parametrize("n_parties", [3, 5])
def test_e7_dealer_keygen(benchmark, n_parties):
    """Trusted-dealer sharing (the fast path) across party counts."""
    benchmark.pedantic(
        lambda: dealer_shared_rsa(n_parties, bits=256), rounds=3, iterations=1
    )


@pytest.mark.parametrize("n_parties", [2, 3, 5, 8])
def test_e7_joint_signature_scaling(benchmark, n_parties):
    """Joint signature latency is ~linear in the number of co-signers."""
    shared = dealer_shared_rsa(n_parties, bits=256)
    co_signers = [
        CoSigner(s, shared.public_key) for s in shared.shares[1:]
    ]

    def sign():
        session = JointSignatureSession(
            shared.shares[0], co_signers, shared.public_key
        )
        return session.sign(b"joint signature benchmark")

    benchmark(sign)
    if n_parties == 3 and benchmark.stats is not None:
        RATIO_SAMPLES["sign_3"] = benchmark.stats.stats.mean


def test_e7_report_ratio(benchmark):
    """The paper's summary row: keygen / joint-signature latency ratio.

    Paper (Malkin et al., 3 servers, 1024-bit): keygen 90-300 s,
    signature 1.2-2 s  ->  ratio ~75-150x.  Shape check: our dealerless
    keygen must be >= 10x slower than a joint signature.
    """
    # Make this a (trivial) benchmark so --benchmark-only keeps it.
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    keygen = RATIO_SAMPLES.get("keygen_128")
    sign = RATIO_SAMPLES.get("sign_3")
    if keygen is None or sign is None:
        pytest.skip("component benches did not run")
    ratio = keygen / sign
    print("\nE7 paper-vs-measured")
    print("  paper    : keygen 90-300 s, joint sig 1.2-2 s, ratio ~75-150x")
    print(
        f"  measured : keygen {keygen:.3f} s (128-bit, dealerless), "
        f"joint sig {sign*1000:.2f} ms (256-bit, n=3), ratio {ratio:.0f}x"
    )
    assert ratio > 10, "keygen must dominate joint signing"
