"""E4 companion — independent proof checking (decision audit) cost.

The server's decisions carry proof trees; an auditor re-validates them
by re-applying every cited axiom.  This bench measures that audit cost
next to the original derivation cost — auditing should be cheaper than
deriving (no crypto, no search, pure rule application).
"""

import itertools

from repro.coalition import build_joint_request
from repro.core.checker import ProofChecker

_nonce = itertools.count()


def _granted_decision(bench_coalition):
    users = bench_coalition["users"]
    server = bench_coalition["server"]
    cert = bench_coalition["write_cert"]
    request = build_joint_request(
        users[0], [users[1]], "write", "ObjectO", cert,
        now=1, nonce=f"audit-{next(_nonce)}",
    )
    decision = server.protocol.authorize(
        request, server.object_acl("ObjectO"), now=2
    )
    assert decision.granted
    return server, decision


def test_audit_structure_only(benchmark, bench_coalition):
    """Inference-structure check (no premise trust store)."""
    server, decision = _granted_decision(bench_coalition)
    aliases = server.protocol.engine.alias_map()

    def audit():
        checker = ProofChecker(accept_all_premises=True, aliases=aliases)
        assert checker.check(decision.proof)

    benchmark(audit)


def test_audit_with_premise_trust(benchmark, bench_coalition):
    """Full audit: every leaf checked against the trusted belief set."""
    server, decision = _granted_decision(bench_coalition)
    premises = set(server.protocol.engine.store.snapshot())
    aliases = server.protocol.engine.alias_map()

    def audit():
        checker = ProofChecker(trusted_premises=premises, aliases=aliases)
        assert checker.check(decision.proof)

    benchmark(audit)
