"""E3 — Figure 2(d): the solo read flow with encrypted response."""

import itertools

from repro.coalition import build_joint_request

_nonce = itertools.count()


def test_e3_authorize_read(benchmark, bench_coalition):
    """Server-side cost of one 1-of-3 read (no encryption)."""
    users = bench_coalition["users"]
    server = bench_coalition["server"]
    cert = bench_coalition["read_cert"]
    acl = server.object_acl("ObjectO")

    def setup():
        request = build_joint_request(
            users[2], [], "read", "ObjectO", cert,
            now=1, nonce=f"bench-read-{next(_nonce)}",
        )
        return (request,), {}

    def authorize(request):
        decision = server.protocol.authorize(request, acl, now=2)
        assert decision.granted
        return decision

    benchmark.pedantic(authorize, setup=setup, rounds=20, iterations=1)


def test_e3_read_with_encrypted_response(benchmark, bench_coalition):
    """Full read handling incl. hybrid encryption under K_u3."""
    users = bench_coalition["users"]
    server = bench_coalition["server"]
    cert = bench_coalition["read_cert"]

    def setup():
        request = build_joint_request(
            users[2], [], "read", "ObjectO", cert,
            now=1, nonce=f"bench-encread-{next(_nonce)}",
        )
        return (request,), {}

    def handle(request):
        result = server.handle_request(
            request, now=2, responder_key=users[2].keypair.public
        )
        assert result.granted and result.encrypted_response is not None
        return result

    benchmark.pedantic(handle, setup=setup, rounds=20, iterations=1)
