"""E2 — Figure 2(b): the joint write flow.

Measures (a) assembling the joint request (requestor + co-signer
signatures) and (b) Server P's full authorization (Step 0 crypto checks
plus the Steps 1-4 derivation).
"""

import itertools

from repro.coalition import build_joint_request

_nonce = itertools.count()


def test_e2_build_write_request(benchmark, bench_coalition):
    """Requestor-side cost: sign + collect co-signer part."""
    users = bench_coalition["users"]
    cert = bench_coalition["write_cert"]

    def build():
        return build_joint_request(
            users[0], [users[1]], "write", "ObjectO", cert,
            now=1, nonce=f"bench-{next(_nonce)}",
        )

    request = benchmark(build)
    assert len(request.parts) == 2


def test_e2_authorize_write(benchmark, bench_coalition):
    """Server-side cost of one 2-of-3 write authorization."""
    users = bench_coalition["users"]
    server = bench_coalition["server"]
    cert = bench_coalition["write_cert"]
    acl = server.object_acl("ObjectO")

    def setup():
        request = build_joint_request(
            users[0], [users[1]], "write", "ObjectO", cert,
            now=1, nonce=f"bench-auth-{next(_nonce)}",
        )
        return (request,), {}

    def authorize(request):
        decision = server.protocol.authorize(request, acl, now=2)
        assert decision.granted
        return decision

    benchmark.pedantic(authorize, setup=setup, rounds=20, iterations=1)


def test_e2_denied_write_below_threshold(benchmark, bench_coalition):
    """Denial path cost (single signer against a 2-of-3 certificate)."""
    users = bench_coalition["users"]
    server = bench_coalition["server"]
    cert = bench_coalition["write_cert"]
    acl = server.object_acl("ObjectO")

    def setup():
        request = build_joint_request(
            users[0], [], "write", "ObjectO", cert,
            now=1, nonce=f"bench-deny-{next(_nonce)}",
        )
        return (request,), {}

    def authorize(request):
        decision = server.protocol.authorize(request, acl, now=2)
        assert not decision.granted
        return decision

    benchmark.pedantic(authorize, setup=setup, rounds=20, iterations=1)
