"""E2 companion — the Figure 2 flow over the simulated network.

Measures the full networked round trip (requestor -> co-signer ->
requestor -> server -> response) including simulation overhead, and the
m-of-n threshold-authority issuance path of Section 3.3.
"""

import itertools

from repro.coalition import ThresholdCoalitionAuthority
from repro.coalition.netflow import NetworkedAccessFlow
from repro.pki import ValidityPeriod
from repro.sim.clock import GlobalClock
from repro.sim.network import Network


def test_networked_write_flow(benchmark, bench_coalition):
    server = bench_coalition["server"]
    users = bench_coalition["users"]
    cert = bench_coalition["write_cert"]

    rounds = itertools.count()

    def flow_once():
        network = Network(GlobalClock(), base_delay=1)
        flow = NetworkedAccessFlow(network, server)
        request_id = flow.start(
            users[0], [users[1]], "write", "ObjectO", cert,
            write_content=b"wire",
            tag=f"r{next(rounds)}",  # distinct nonce per round
        )
        flow.run()
        result = flow.result_of(request_id)
        assert result is not None and result.result.granted
        return result.ticks_elapsed

    ticks = benchmark(flow_once)
    assert ticks == 3


def test_threshold_authority_issuance(benchmark):
    """Shoup m-of-n issuance with one domain offline (§3.3)."""
    from repro.coalition import Domain

    domains = [Domain(f"TD{i}", key_bits=256) for i in (1, 2, 3)]
    users = [
        d.register_user(f"tu{i}", now=0)
        for i, d in enumerate(domains, start=1)
    ]
    authority = ThresholdCoalitionAuthority.establish(
        domains, threshold=2, key_bits=96
    )
    domains[2].cooperative = False  # one member down; issuance continues

    def issue():
        return authority.issue_threshold_certificate(
            users, 2, "G_write", 0, ValidityPeriod(0, 100)
        )

    cert = benchmark(issue)
    assert authority.public_key.verify(cert.payload_bytes(), cert.signature)
