"""E12 — Case II vs the baselines (Section 2.2 + related work).

Three comparisons:

* **Verification cost**: a Case II decision verifies ONE joint
  signature on the threshold AC, an SPKI-style conjunction verifies n
  per-domain certificates — linear in coalition size.
* **Issuance cost**: joint signature (2(n-1) messages, n share
  applications) vs n independent signatures vs one unilateral one.
* **Requirement III**: which designs admit unilateral issuance at all
  (printed as the summary table; the attack itself is exercised in the
  integration tests).
"""

import itertools

import pytest

from repro.baselines.lockbox import CaseIAuthority
from repro.baselines.spki import SPKIDomainAuthority, SPKIVerifier
from repro.baselines.unilateral import UnilateralAuthority
from repro.pki import ValidityPeriod

_ids = itertools.count()
N_DOMAINS = 3


@pytest.fixture(scope="module")
def spki_setup():
    authorities = [
        SPKIDomainAuthority(f"D{i}", key_bits=256) for i in range(N_DOMAINS)
    ]
    verifier = SPKIVerifier({a.name: a.public_key for a in authorities})
    certs = [
        a.issue([("u1", "k1")], 1, "G", 0, ValidityPeriod(0, 10**6))
        for a in authorities
    ]
    return verifier, certs


def test_e12_case2_tac_verification(benchmark, bench_coalition):
    """Verify ONE joint signature (Case II verifier-side cost)."""
    cert = bench_coalition["write_cert"]
    public = bench_coalition["coalition"].authority.public_key

    def verify():
        assert public.verify(cert.payload_bytes(), cert.signature)

    benchmark(verify)


def test_e12_spki_conjunction_verification(benchmark, spki_setup):
    """Verify the n-certificate conjunction (SPKI-style cost)."""
    verifier, certs = spki_setup

    def verify():
        assert verifier.accepts(certs, "G", now=1)

    benchmark(verify)


def test_e12_case2_joint_issuance(benchmark, bench_coalition):
    coalition = bench_coalition["coalition"]
    users = bench_coalition["users"]

    def issue():
        return coalition.authority.issue_threshold_certificate(
            users, 2, f"Gbench{next(_ids)}", 0, ValidityPeriod(0, 100)
        )

    benchmark(issue)


def test_e12_case1_lockbox_issuance(benchmark):
    authority = CaseIAuthority(
        "AA_c1", [f"D{i}" for i in range(N_DOMAINS)], key_bits=256, seed=1
    )
    passwords = {d: authority.password_of(d) for d in authority.domain_names}

    def issue():
        return authority.issue_with_consensus(
            [("u1", "k1")], 1, "G", 0, ValidityPeriod(0, 100), passwords
        )

    benchmark(issue)


def test_e12_unilateral_issuance(benchmark):
    authority = UnilateralAuthority("D1", key_bits=256)

    def issue():
        return authority.issue_attribute(
            "u1", "k1", "G", 0, ValidityPeriod(0, 100)
        )

    benchmark(issue)


def test_e12_summary_table(benchmark, bench_coalition):
    """The qualitative comparison table the paper's argument implies."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    n = N_DOMAINS
    print("\nE12: design comparison (n = number of member domains)")
    print(f"{'design':<22} {'certs/decision':>15} {'sigs to issue':>14} "
          f"{'unilateral issuance possible?':>30}")
    rows = [
        ("Case II shared key", 1, f"{n} shares", "no (needs all n shares)"),
        ("Case I lockbox", 1, "1 (boxed)", "yes, after key extraction"),
        ("SPKI conjunction", n, f"{n}", "no, IF verifier policy intact"),
        ("Unilateral AA", 1, "1", "yes, by design"),
    ]
    for name, certs, sigs, unilateral in rows:
        print(f"{name:<22} {certs:>15} {sigs:>14} {unilateral:>30}")
