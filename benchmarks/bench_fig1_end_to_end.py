"""E1 — Figure 1 end to end: coalition formation and full access cycle.

Reproduces the architecture figure as a measurable pipeline: domain
setup + shared keygen + trust configuration + certificate issuance +
one joint write.  The companion per-stage benches (E2/E3/E7) break the
cycle down.
"""

import itertools

from repro.coalition import (
    ACLEntry,
    Coalition,
    CoalitionServer,
    Domain,
    build_joint_request,
)
from repro.pki import ValidityPeriod

_counter = itertools.count()


def _full_cycle(key_bits: int = 256) -> bool:
    run_id = next(_counter)
    domains = [Domain(f"D{i}-{run_id}", key_bits=key_bits) for i in (1, 2, 3)]
    users = [
        d.register_user(f"u{i}", now=0) for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition(f"e2e-{run_id}", key_bits=key_bits)
    coalition.form(domains)
    server = CoalitionServer("P")
    coalition.attach_server(server)
    server.create_object(
        "O", b"data", [ACLEntry.of("G_write", ["write"])], "G_admin"
    )
    tac = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", 0, ValidityPeriod(0, 100)
    )
    request = build_joint_request(users[0], [users[1]], "write", "O", tac, now=1)
    result = server.handle_request(request, now=2, write_content=b"w")
    assert result.granted
    return result.granted


def test_e1_full_coalition_cycle(benchmark):
    """Form a coalition, issue a certificate, grant one joint write."""
    benchmark.pedantic(_full_cycle, rounds=3, iterations=1)
