"""E6 — the executable soundness theorem (Appendix D).

Benchmarks model checking all axiom schemas over randomly generated
legal runs, sweeping system size.
"""

import pytest

from repro.semantics.generators import GeneratorConfig, generate_system
from repro.semantics.soundness import SoundnessChecker


@pytest.mark.parametrize("n_ticks", [4, 8, 12])
def test_e6_soundness_sweep(benchmark, n_ticks):
    system = generate_system(
        GeneratorConfig(n_runs=2, n_ticks=n_ticks), seed=42
    )

    def check():
        report = SoundnessChecker(system).check_all()
        assert report.sound
        return report.instances_checked

    instances = benchmark(check)
    assert instances > 0


def test_e6_legality_checking(benchmark):
    system = generate_system(GeneratorConfig(n_runs=3, n_ticks=10), seed=7)

    def check_all_legal():
        for run in system.runs:
            run.check_legality()

    benchmark(check_all_legal)
