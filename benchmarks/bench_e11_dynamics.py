"""E11 — coalition-dynamics cost (Section 6).

Measures real join events (re-key + mass revocation + re-issue) as the
live certificate population grows, and contrasts with proactive share
refresh (constant cost).  Expected shape: join cost grows linearly in
the certificate population; refresh does not.
"""

import itertools

import pytest

from repro.coalition import Coalition, Domain
from repro.pki import ValidityPeriod

_ids = itertools.count()


def _loaded_coalition(n_certs: int):
    run_id = next(_ids)
    domains = [Domain(f"Dyn{run_id}-{i}", key_bits=256) for i in (1, 2, 3)]
    users = [
        d.register_user(f"u{i}", now=0) for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition(f"dyn-{run_id}", key_bits=256)
    coalition.form(domains)
    for k in range(n_certs):
        coalition.authority.issue_threshold_certificate(
            users, 2, f"G{k}", 0, ValidityPeriod(0, 10**6)
        )
    return coalition


@pytest.mark.parametrize("n_certs", [1, 5, 15])
def test_e11_join_cost(benchmark, n_certs):
    def setup():
        coalition = _loaded_coalition(n_certs)
        newcomer = Domain(f"DJ-{next(_ids)}", key_bits=256)
        return (coalition, newcomer), {}

    def join(coalition, newcomer):
        report = coalition.join(newcomer, now=1)
        assert report.certificates_revoked == n_certs
        return report

    benchmark.pedantic(join, setup=setup, rounds=3, iterations=1)


def test_e11_refresh_cost(benchmark):
    """Refresh at a 15-certificate population: no certificate churn."""
    coalition = _loaded_coalition(15)

    def refresh():
        report = coalition.refresh(now=1)
        assert report.certificates_revoked == 0
        return report

    benchmark(refresh)


def test_e11_report_table(benchmark):
    """Printed series: measured operation counts per event type."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print("\nE11: operations per membership event (3->4 domains)")
    print(f"{'live certs':>11} {'revoked':>8} {'reissued':>9} "
          f"{'keygen msgs':>12} {'total ops':>10}")
    for n_certs in (1, 5, 15, 30):
        coalition = _loaded_coalition(n_certs)
        report = coalition.join(Domain(f"DT-{next(_ids)}", key_bits=256), now=1)
        print(
            f"{n_certs:>11} {report.certificates_revoked:>8} "
            f"{report.certificates_reissued:>9} {report.keygen_messages:>12} "
            f"{report.total_operations():>10}"
        )
    refresh_coalition = _loaded_coalition(30)
    refresh_report = refresh_coalition.refresh(now=1)
    print(
        f"{'refresh@30':>11} {refresh_report.certificates_revoked:>8} "
        f"{refresh_report.certificates_reissued:>9} "
        f"{refresh_report.keygen_messages:>12} "
        f"{refresh_report.total_operations():>10}"
    )
