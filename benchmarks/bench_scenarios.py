"""E20 — coalition-life scenarios under standing invariants.

Runs every registered scenario (DESIGN.md §15) through the threaded
service and records one named row per scenario in
``BENCH_service.json``: latency percentiles, typed sheds, faults
survived, re-keys and replay outcomes.  The acceptance bar is the
scenarios' own invariant sets — accounting, no stale grant after a
revocation barrier, replays denied across restarts, oracle byte-parity
where feasible — so a perf row only lands if the run was *correct*.

One extra row drives an edge-capable scenario over a real TCP
connection (``transport="edge"``), so the full network path is
exercised by scenario traffic too, not only by the loadgen sweeps.

``SERVICE_BENCH_SMOKE=1`` trims the set to the two fastest scenarios
for CI smoke runs; the invariant assertions hold in both sizes.
"""

import os

from repro.service.scenarios import SCENARIOS, ScenarioRunner

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
SEED = 11
NUM_SHARDS = 4

SMOKE_SET = ("stale-cert-adversary", "chaos-storm")


def _names():
    if SMOKE:
        return list(SMOKE_SET)
    return sorted(SCENARIOS)


def test_scenarios_record_rows(service_report):
    """Every scenario upholds its invariants and records a bench row."""
    runner = ScenarioRunner(mode="threaded", num_shards=NUM_SHARDS, seed=SEED)
    for name in _names():
        report = runner.run(SCENARIOS[name])
        # The report's own name key lands in the row; prefix it so
        # scenario rows group together among the loadgen rows.
        report.name = f"scenario-{name}"
        service_report(
            report.name,
            report,
            faults_survived=report.faults_injected + report.workers_killed,
        )
        assert report.ok, (
            f"{name}: invariant violations: {report.violations()}"
        )
        # The row is only meaningful if the run did real work.
        assert report.requests > 0
        assert (
            report.evaluated + report.errored + report.overloaded
            == report.submitted
        )
        assert report.p50_ms <= report.p95_ms <= report.p99_ms


def test_scenario_over_edge_records_row(service_report):
    """One scenario's traffic over real TCP: same invariants, one row."""
    runner = ScenarioRunner(
        mode="threaded",
        num_shards=NUM_SHARDS,
        transport="edge",
        seed=SEED,
    )
    report = runner.run(SCENARIOS["stale-cert-adversary"])
    report.name = "scenario-stale-cert-adversary-edge"
    service_report(report.name, report, faults_survived=0)
    assert report.ok, f"edge run violations: {report.violations()}"
    assert report.transport == "edge"
    assert report.granted > 0 and report.denied > 0
