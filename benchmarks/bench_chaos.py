"""E16 — serving latency and correctness under injected faults.

The chaos run drives the same open-loop stream as ``bench_service.py``
through a service with a fault plan attached: an ``InjectedFault``
every 50th evaluation plus one forced worker kill on shard 0.  The
acceptance bar is the DESIGN.md §11 no-stranding invariant — every
submitted ticket resolves to a typed decision, the errored count in
the metrics snapshot matches the injector's ledger, and the latency
tail is recorded next to the chaos-free control so the overhead of
surviving faults stays visible in ``BENCH_service.json``.

``SERVICE_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs; the
acceptance assertions hold in both sizes.
"""

import os
from dataclasses import replace

from repro.obs.metrics import histogram_quantile
from repro.service.loadgen import LoadgenConfig, build_fixture, run_loadgen

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
TOTAL_REQUESTS = 60 if SMOKE else 300

# Mirrors bench_service.BASE_CONFIG minus revocations: a fixed epoch
# keeps every decision in the current epoch's registry, so snapshot
# counters can be compared exactly against the injector's ledger.
BASE_CONFIG = LoadgenConfig(
    total_requests=TOTAL_REQUESTS,
    num_shards=4,
    queue_depth=1024,
    read_fraction=0.5,
    revoke_every=0,
    num_objects=8,
    key_bits=256,
    mode="threaded",
    seed=23,
)

CHAOS_CONFIG = replace(
    BASE_CONFIG,
    chaos_raise_every=50,  # ~2% of evaluations fault
    chaos_kill_shard=0,
    chaos_kill_after=5,  # one loop-top kill once shard 0 has served 5
    restart_backoff_s=0.005,
)


def test_chaos_run_strands_nothing(service_report):
    """Faults every 50th evaluation + one worker kill: full accounting."""
    fixture = build_fixture(CHAOS_CONFIG)
    try:
        report = run_loadgen(CHAOS_CONFIG, fixture)
        service_report("chaos", report)

        assert report.stranded == 0, "every ticket must resolve"
        chaos_stats = fixture.chaos.stats()
        assert report.errored == chaos_stats["faults_raised"] > 0
        assert report.worker_crashes == chaos_stats["kills_fired"] == 1
        assert report.worker_restarts == 1, "supervisor replaced the worker"
        # Every arrival accounted for, by type.
        assert (
            report.evaluated + report.errored + report.overloaded
            == report.submitted
        )
        assert report.granted > 0, "the service keeps serving through faults"
        assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms

        snapshot = fixture.service.metrics_snapshot()
        counters = snapshot["counters"]
        assert counters["service.errored"] == report.errored
        assert counters["service.worker_crashes"] == 1
        assert counters["service.worker_restarts"] == 1
        # The histogram agrees with the loadgen's own percentile math to
        # within one bucket (nearest-rank over bucket upper bounds).
        hist_p95_s = histogram_quantile(
            snapshot["histograms"]["service.request_latency_s"], 0.95
        )
        assert hist_p95_s * 1000 >= report.p95_ms
    finally:
        fixture.service.close()


def test_chaos_off_control_is_clean(service_report):
    """The identical stream with injection disabled: zero errored."""
    config = replace(
        CHAOS_CONFIG, chaos_raise_every=0, chaos_kill_shard=-1
    )
    fixture = build_fixture(config)
    try:
        assert fixture.chaos is None, "no injector when every knob is inert"
        report = run_loadgen(config, fixture)
        service_report("chaos-off", report)

        assert report.stranded == 0
        assert report.errored == 0
        assert report.worker_crashes == 0 and report.worker_restarts == 0
        assert report.evaluated == report.submitted
        assert report.overloaded == 0
    finally:
        fixture.service.close()
