"""E19 — socket edge overhead: tail latency under connection churn.

Drives the same seeded workload three ways and records all of them
into ``BENCH_service.json`` (via the ``service_report`` fixture):

* ``edge-inproc`` — in-process ``submit_batch`` (the E14 path), the
  denominator for edge overhead;
* ``edge-socket-closed`` — K closed-loop client connections through
  the asyncio edge over real TCP, with connection churn (every
  connection reconnects every k requests), measuring the tail cost of
  framing + event loop + reconnect storms;
* ``edge-socket-open`` — target-rps open-loop pacing over pipelined
  socket connections, the "clients don't wait for each other" view.

The ``edge-socket-closed`` row carries ``edge_overhead_ratio``
(socket p50 / in-process p50) as a measured series, so successive PRs
can see the front door getting cheaper or dearer.  Accounting is
strict in every row: ``evaluated + errored + overloaded ==
submitted`` must hold under churn, or responses were dropped on the
wire.

``SERVICE_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs.
"""

import os
from dataclasses import replace

from repro.service.loadgen import (
    LoadgenConfig,
    run_loadgen,
    run_socket_loadgen,
)

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
TOTAL_REQUESTS = 60 if SMOKE else 240

BASE_CONFIG = LoadgenConfig(
    num_shards=2,
    total_requests=TOTAL_REQUESTS,
    queue_depth=1024,  # measure evaluation + transport, not shed
    read_fraction=0.5,
    revoke_every=TOTAL_REQUESTS // 6,
    num_objects=8,
    key_bits=256,
    mode="threaded",
    seed=17,
    socket_clients=4,
    churn_every=max(4, TOTAL_REQUESTS // 12),
)


def _assert_accounted(report):
    assert report.stranded == 0
    assert (
        report.evaluated + report.errored + report.overloaded
        == report.submitted
    )
    assert report.granted > 0
    assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms


def test_edge_overhead_vs_inproc(service_report):
    """The headline E19 series: socket closed-loop vs in-process."""
    inproc = run_loadgen(replace(BASE_CONFIG, batch_size=4))
    _assert_accounted(inproc)
    service_report("edge-inproc", inproc)

    socket = run_socket_loadgen(replace(BASE_CONFIG, socket_loop="closed"))
    _assert_accounted(socket)
    assert socket.transport == "socket"
    assert socket.reconnects > 0, "churn must actually churn"
    assert socket.connections > BASE_CONFIG.socket_clients
    assert socket.revocations_published > 0  # epochs shipped mid-run
    overhead = (
        socket.p50_ms / inproc.p50_ms if inproc.p50_ms > 0 else 0.0
    )
    service_report(
        "edge-socket-closed",
        socket,
        edge_overhead_ratio=overhead,
        inproc_p50_ms=inproc.p50_ms,
    )
    # The edge adds real work (framing, loop hops, TCP) — it cannot be
    # free — but a sane front door stays within an order of magnitude.
    assert overhead > 0


def test_edge_open_loop_paced(service_report):
    """Open-loop socket pacing: pipelined connections, id-correlated."""
    rate = 150.0 if SMOKE else 400.0
    report = run_socket_loadgen(
        replace(
            BASE_CONFIG,
            socket_loop="open",
            churn_every=0,
            arrival_rate=rate,
            socket_clients=2,
        )
    )
    _assert_accounted(report)
    assert report.transport == "socket"
    assert report.target_rps == rate
    assert report.achieved_rps > 0
    service_report("edge-socket-open", report)
