"""E8 — trust liability: Case I vs Case II key-compromise probability.

Section 2.2's qualitative argument, quantified by Monte-Carlo
simulation over coalition size.  Expected shape: Case II (shared key)
liability decays exponentially in n while Case I grows slowly with n
(more insiders), so the liability ratio explodes as coalitions grow.
"""

from repro.analysis.compromise import (
    CompromiseModel,
    simulate_compromise,
    sweep_coalition_size,
)

TRIALS = 20_000


def test_e8_monte_carlo_three_domains(benchmark):
    model = CompromiseModel(n_domains=3)
    result = benchmark(
        lambda: simulate_compromise(model, trials=TRIALS, seed=1)
    )
    assert result.case2_analytic < result.case1_analytic


def test_e8_liability_sweep_table(benchmark):
    """The E8 series: liability vs coalition size (printed as a table)."""

    def sweep():
        return sweep_coalition_size([2, 3, 5, 8], trials=5_000, seed=0)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nE8: P[AA key compromised] per campaign")
    print(f"{'n':>3} {'CaseI(analytic)':>16} {'CaseI(MC)':>10} "
          f"{'CaseII(analytic)':>17} {'CaseII(MC)':>11} {'ratio':>10}")
    for r in results:
        print(
            f"{r.model.n_domains:>3} {r.case1_analytic:>16.4f} "
            f"{r.case1_estimate:>10.4f} {r.case2_analytic:>17.2e} "
            f"{r.case2_estimate:>11.2e} {min(r.liability_ratio, 1e12):>10.0f}"
        )
    # Shape assertions: Case II always dominates; the gap widens with n.
    ratios = [r.case1_analytic / r.case2_analytic for r in results]
    assert all(r > 1 for r in ratios)
    assert ratios == sorted(ratios)
