"""E18 — WAL append overhead and torn-tail recovery time.

Two series land in ``BENCH_service.json`` via the ``service_report``
fixture:

* ``wal_append_overhead`` — steady-state audit appends with the WAL
  off, with batched fsync (``sync_every=64``), with fsync per append
  (``sync_every=1``), and with fsync only on close (``sync_every=0``),
  each reported as per-append microseconds plus the ratio against the
  WAL-less baseline.
* ``recovery_time`` — time to scan + heal a torn WAL as a function of
  log size, with the recovered-entry throughput.

``SERVICE_BENCH_SMOKE=1`` shrinks both sweeps for CI smoke runs.
"""

import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict

import pytest

from repro.coalition.audit import AuditLog
from repro.coalition.protocol import AuthorizationDecision
from repro.storage.recovery import open_wal_log, recover
from repro.storage.wal import list_segments

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
APPENDS = 200 if SMOKE else 1500
RECOVERY_SIZES = [100, 300] if SMOKE else [500, 1500, 4000]
KEY_BITS = 256


@dataclass
class WalBenchRow:
    """Minimal ``service_report``-compatible row (has ``as_dict``)."""

    config: Dict[str, object] = field(default_factory=dict)
    wall_s: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


def _decision(i: int) -> AuthorizationDecision:
    return AuthorizationDecision(
        granted=(i % 4 != 0),
        reason="bench grant" if i % 4 else "denied: bench",
        operation="read" if i % 2 else "write",
        object_name=f"Obj{i % 8}",
        checked_at=i + 1,
    )


def _time_appends(log, n: int) -> float:
    decisions = [_decision(i) for i in range(n)]
    start = time.perf_counter()
    for decision in decisions:
        log.append(decision)
    return time.perf_counter() - start


def test_append_overhead_sync_sweep(service_report, tmp_path):
    """Appending through the WAL must not dominate the signing cost."""
    signer = AuditLog(key_bits=KEY_BITS)
    baseline_log = AuditLog(signer=signer.keypair)
    baseline_s = _time_appends(baseline_log, APPENDS)
    baseline_us = baseline_s / APPENDS * 1e6
    service_report(
        "wal-append-baseline",
        WalBenchRow(
            config={"appends": APPENDS, "key_bits": KEY_BITS, "wal": "off"},
            wall_s=baseline_s,
        ),
        per_append_us=round(baseline_us, 3),
    )
    for label, sync_every in (
        ("sync-close-only", 0),
        ("sync-64", 64),
        ("sync-every", 1),
    ):
        wal_dir = str(tmp_path / f"wal-{label}")
        log, wal, _ = open_wal_log(
            wal_dir, key_bits=KEY_BITS, sync_every=sync_every
        )
        elapsed = _time_appends(log, APPENDS)
        stats = wal.stats()
        wal.close()
        per_us = elapsed / APPENDS * 1e6
        overhead = per_us / baseline_us if baseline_us > 0 else 0.0
        service_report(
            f"wal-append-{label}",
            WalBenchRow(
                config={
                    "appends": APPENDS,
                    "key_bits": KEY_BITS,
                    "sync_every": sync_every,
                },
                wall_s=elapsed,
            ),
            per_append_us=round(per_us, 3),
            wal_append_overhead=round(overhead, 4),
            syncs=stats["syncs"],
            bytes_appended=stats["bytes_appended"],
        )
        # Everything written is recoverable, whatever the sync policy
        # (the process exited cleanly; batching only defers fsync).
        recovered = recover(wal_dir, truncate=False)
        assert recovered.clean
        assert len(recovered.entries) == APPENDS


@pytest.mark.parametrize("n_entries", RECOVERY_SIZES)
def test_recovery_time_vs_log_size(service_report, tmp_path, n_entries):
    """Recovery is a linear scan: time it against the log size."""
    wal_dir = str(tmp_path / f"wal-{n_entries}")
    log, wal, _ = open_wal_log(wal_dir, key_bits=KEY_BITS, sync_every=0)
    for i in range(n_entries):
        log.append(_decision(i))
    wal.close()
    # Tear the tail mid-frame so recovery does real healing work.
    last = list_segments(wal_dir)[-1]
    with open(last, "ab") as handle:
        handle.truncate(os.path.getsize(last) - 9)
    start = time.perf_counter()
    recovered = recover(wal_dir, truncate=True)
    elapsed = time.perf_counter() - start
    assert recovered.torn is not None
    assert len(recovered.entries) == n_entries - 1
    service_report(
        f"wal-recovery-{n_entries}",
        WalBenchRow(
            config={"entries": n_entries, "key_bits": KEY_BITS},
            wall_s=elapsed,
        ),
        recovery_time=round(elapsed, 6),
        entries_recovered=len(recovered.entries),
        entries_per_s=round(len(recovered.entries) / elapsed, 1)
        if elapsed > 0
        else 0.0,
        truncated_bytes=recovered.truncated_bytes,
    )
