"""E4 — the derivation engine itself (Appendix E statement chain).

Benchmarks the pure-logic cost of admitting certificates and deriving
``G says``, independent of RSA arithmetic, plus the DESIGN.md ablation:
how jurisdiction lookup scales with the size of the belief store.
"""

import pytest

from repro.core.derivation import DerivationEngine
from repro.core.formulas import Controls, KeySpeaksFor, Says, SpeaksForGroup
from repro.core.messages import Data, Signed
from repro.core.patterns import AnyTime
from repro.core.temporal import FOREVER, at, during
from repro.core.terms import (
    CompoundPrincipal,
    Group,
    KeyRef,
    Principal,
    Var,
)

P = Principal("ServerP")
AA = Principal("AA")
CA = Principal("CA1")
KAA, KCA = KeyRef("kaa"), KeyRef("kca")


def _engine(extra_beliefs: int = 0) -> DerivationEngine:
    engine = DerivationEngine(P)
    domains = CompoundPrincipal.of([Principal(f"D{i}") for i in (1, 2, 3)])
    engine.believe(KeySpeaksFor(KAA, during(0, FOREVER, P), domains.threshold(3)))
    engine.register_alias(domains, AA)
    membership = SpeaksForGroup(Var("cp"), AnyTime("iv"), Var("g"))
    engine.believe(Controls(AA, during(0, FOREVER), membership))
    engine.believe(
        Controls(AA, during(0, FOREVER, P), Says(AA, AnyTime("t"), membership))
    )
    id_schema = KeySpeaksFor(Var("k"), AnyTime("iv"), Var("q"))
    engine.believe(Controls(CA, during(0, FOREVER), id_schema))
    engine.believe(
        Controls(CA, during(0, FOREVER, P), Says(CA, AnyTime("t"), id_schema))
    )
    engine.believe(KeySpeaksFor(KCA, during(0, FOREVER, P), CA))
    # Ablation knob: pad the store with irrelevant beliefs.
    for i in range(extra_beliefs):
        engine.believe(
            SpeaksForGroup(Principal(f"pad{i}"), during(0, 10), Group(f"Gpad{i}"))
        )
    return engine


def _certificates():
    users = [Principal(f"U{i}") for i in (1, 2, 3)]
    keys = [KeyRef(f"k{i}") for i in (1, 2, 3)]
    id_certs = [
        Signed(Says(CA, at(1), KeySpeaksFor(k, during(0, 100), u)), KCA)
        for u, k in zip(users, keys)
    ]
    cp = CompoundPrincipal.of([u.bound_to(k) for u, k in zip(users, keys)])
    tac = Signed(
        Says(AA, at(2), SpeaksForGroup(cp.threshold(2), during(0, 100), Group("G"))),
        KAA,
    )
    requests = [
        Signed(Says(u, at(3), Data('"write" O')), k)
        for u, k in zip(users, keys)
    ]
    return id_certs, tac, requests


def _derive(engine: DerivationEngine) -> None:
    id_certs, tac, requests = _certificates()
    for cert in id_certs[:2]:
        engine.admit_certificate(cert, received_at=5)
    membership = engine.admit_certificate(tac, received_at=5)
    says = [
        engine.admit_signed_utterance(req, received_at=6)[1]
        for req in requests[:2]
    ]
    proof = engine.derive_group_says(membership, says)
    assert proof.rule == "A38"


def test_e4_full_derivation_chain(benchmark):
    """Statements 4-13 of Appendix E, pure logic."""
    benchmark.pedantic(
        lambda: _derive(_engine()), rounds=30, iterations=1
    )


@pytest.mark.parametrize("store_size", [0, 100, 500, 5000, 10000])
def test_e4_derivation_vs_store_size(benchmark, store_size):
    """Ablation: jurisdiction lookup cost as the belief store grows.

    Store construction happens in setup so the timed region is the
    derivation alone; with the discrimination index, the mean should be
    flat across store sizes (the 500-pad case within ~1.5x of 0-pad,
    and 10k pads feasible at all).
    """
    benchmark.pedantic(
        _derive,
        setup=lambda: ((_engine(extra_beliefs=store_size),), {}),
        rounds=10,
        iterations=1,
    )
    engine = _engine(extra_beliefs=store_size)
    _derive(engine)
    assert engine.stats()["full_scans"] == 0


def test_e4_repeat_authorization_cold_vs_warm(benchmark, bench_coalition):
    """The certificate-admission cache across repeat joint requests.

    The first authorization pays the full Step 1/Step 2 derivation
    chains; repeats of the same certificates (fresh nonces) reuse the
    cached admissions.  Asserts the >=5x derivation-step win via
    ``engine.stats()`` counters; the timed region is a warm request.
    """
    from repro.coalition import (
        ACLEntry,
        CoalitionServer,
        build_joint_request,
    )

    coalition = bench_coalition["coalition"]
    users = bench_coalition["users"]
    write_cert = bench_coalition["write_cert"]

    server = CoalitionServer("BenchCacheP", freshness_window=10**9)
    coalition.attach_server(server)
    server.create_object(
        "ObjectO",
        b"bench",
        [ACLEntry.of("G_write", ["write"])],
        admin_group="G_admin",
    )
    engine = server.protocol.engine
    clock = iter(range(5, 10**6))

    def fresh_request():
        now = next(clock)
        request = build_joint_request(
            users[0], [users[1]], "write", "ObjectO", write_cert, now=now
        )
        return (request, now), {}

    def authorize(request, now):
        result = server.handle_request(request, now=now, write_content=b"x")
        assert result.granted
        return result

    # Cold request: all three certificates derived from scratch.
    before = engine.stats()["steps_taken"]
    cold = authorize(*fresh_request()[0])
    cold_steps = engine.stats()["steps_taken"] - before
    assert cold.decision.cache_misses == 3

    # Warm request: admissions served from cache.
    before = engine.stats()["steps_taken"]
    warm = authorize(*fresh_request()[0])
    warm_steps = engine.stats()["steps_taken"] - before
    assert warm.decision.cache_hits == 3
    assert warm.decision.cache_misses == 0
    assert warm_steps * 5 <= cold_steps

    benchmark.pedantic(authorize, setup=fresh_request, rounds=15, iterations=1)
