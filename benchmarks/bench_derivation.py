"""E4 — the derivation engine itself (Appendix E statement chain).

Benchmarks the pure-logic cost of admitting certificates and deriving
``G says``, independent of RSA arithmetic, plus the DESIGN.md ablation:
how jurisdiction lookup scales with the size of the belief store.
"""

import pytest

from repro.core.derivation import DerivationEngine
from repro.core.formulas import Controls, KeySpeaksFor, Says, SpeaksForGroup
from repro.core.messages import Data, Signed
from repro.core.patterns import AnyTime
from repro.core.temporal import FOREVER, at, during
from repro.core.terms import (
    CompoundPrincipal,
    Group,
    KeyRef,
    Principal,
    Var,
)

P = Principal("ServerP")
AA = Principal("AA")
CA = Principal("CA1")
KAA, KCA = KeyRef("kaa"), KeyRef("kca")


def _engine(extra_beliefs: int = 0) -> DerivationEngine:
    engine = DerivationEngine(P)
    domains = CompoundPrincipal.of([Principal(f"D{i}") for i in (1, 2, 3)])
    engine.believe(KeySpeaksFor(KAA, during(0, FOREVER, P), domains.threshold(3)))
    engine.register_alias(domains, AA)
    membership = SpeaksForGroup(Var("cp"), AnyTime("iv"), Var("g"))
    engine.believe(Controls(AA, during(0, FOREVER), membership))
    engine.believe(
        Controls(AA, during(0, FOREVER, P), Says(AA, AnyTime("t"), membership))
    )
    id_schema = KeySpeaksFor(Var("k"), AnyTime("iv"), Var("q"))
    engine.believe(Controls(CA, during(0, FOREVER), id_schema))
    engine.believe(
        Controls(CA, during(0, FOREVER, P), Says(CA, AnyTime("t"), id_schema))
    )
    engine.believe(KeySpeaksFor(KCA, during(0, FOREVER, P), CA))
    # Ablation knob: pad the store with irrelevant beliefs.
    for i in range(extra_beliefs):
        engine.believe(
            SpeaksForGroup(Principal(f"pad{i}"), during(0, 10), Group(f"Gpad{i}"))
        )
    return engine


def _certificates():
    users = [Principal(f"U{i}") for i in (1, 2, 3)]
    keys = [KeyRef(f"k{i}") for i in (1, 2, 3)]
    id_certs = [
        Signed(Says(CA, at(1), KeySpeaksFor(k, during(0, 100), u)), KCA)
        for u, k in zip(users, keys)
    ]
    cp = CompoundPrincipal.of([u.bound_to(k) for u, k in zip(users, keys)])
    tac = Signed(
        Says(AA, at(2), SpeaksForGroup(cp.threshold(2), during(0, 100), Group("G"))),
        KAA,
    )
    requests = [
        Signed(Says(u, at(3), Data('"write" O')), k)
        for u, k in zip(users, keys)
    ]
    return id_certs, tac, requests


def _derive(engine: DerivationEngine) -> None:
    id_certs, tac, requests = _certificates()
    for cert in id_certs[:2]:
        engine.admit_certificate(cert, received_at=5)
    membership = engine.admit_certificate(tac, received_at=5)
    says = [
        engine.admit_signed_utterance(req, received_at=6)[1]
        for req in requests[:2]
    ]
    proof = engine.derive_group_says(membership, says)
    assert proof.rule == "A38"


def test_e4_full_derivation_chain(benchmark):
    """Statements 4-13 of Appendix E, pure logic."""
    benchmark.pedantic(
        lambda: _derive(_engine()), rounds=30, iterations=1
    )


@pytest.mark.parametrize("store_size", [0, 100, 500])
def test_e4_derivation_vs_store_size(benchmark, store_size):
    """Ablation: jurisdiction lookup cost as the belief store grows."""
    benchmark.pedantic(
        lambda: _derive(_engine(extra_beliefs=store_size)),
        rounds=10,
        iterations=1,
    )
