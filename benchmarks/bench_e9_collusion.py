"""E9 — collusion bounds (Sections 3.1 and 6).

Empirically demonstrates, on real key material, that (a) no proper
subset of additive shares can forge a joint signature while the full
set can, and (b) reports the (n+1)/2 keygen-transcript collusion bound
the paper discusses as an open coalition-management problem.
"""

import pytest

from repro.analysis.collusion import (
    sweep_collusion,
    transcript_collusion_threshold,
)
from repro.crypto.boneh_franklin import dealer_shared_rsa


@pytest.mark.parametrize("n_domains", [3, 5])
def test_e9_collusion_sweep(benchmark, n_domains):
    shared = dealer_shared_rsa(n_domains, bits=256)

    def sweep():
        return sweep_collusion(shared.shares, shared.public_key)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nE9: collusion outcomes for n={n_domains}")
    print(f"{'colluders':>10} {'forge from shares':>18} "
          f"{'factor from transcript':>23}")
    for row in rows:
        print(
            f"{row.colluders:>10} {str(row.share_recovery):>18} "
            f"{str(row.transcript_recovery):>23}"
        )
    # Shape: only the full set forges; transcript bound at ceil((n+1)/2).
    assert [r.share_recovery for r in rows] == [False] * (n_domains - 1) + [True]
    threshold = transcript_collusion_threshold(n_domains)
    assert [r.transcript_recovery for r in rows] == [
        k >= threshold for k in range(1, n_domains + 1)
    ]
