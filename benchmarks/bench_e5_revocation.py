"""E5 — revocation processing cost (Section 4.3, Message 2).

Measures admitting a revocation certificate (signature check + the
jurisdiction derivation for the negated membership) and the marginal
cost a planted revocation adds to subsequent authorization decisions.
"""

import itertools

from repro.coalition import build_joint_request
from repro.pki import ValidityPeriod

_ids = itertools.count()


def test_e5_admit_revocation(benchmark, bench_coalition):
    coalition = bench_coalition["coalition"]
    server = bench_coalition["server"]
    users = bench_coalition["users"]

    def setup():
        cert = coalition.authority.issue_threshold_certificate(
            users, 2, f"Grev{next(_ids)}", 0, ValidityPeriod(0, 10**6)
        )
        revocation = coalition.authority.revoke_certificate(cert, now=1)
        return (revocation,), {}

    def admit(revocation):
        proof = server.protocol.apply_revocation(revocation, now=2)
        return proof

    benchmark.pedantic(admit, setup=setup, rounds=10, iterations=1)


def test_e5_authorization_with_revocation_load(benchmark, bench_coalition):
    """Decision cost with many planted revocations in the belief store."""
    coalition = bench_coalition["coalition"]
    server = bench_coalition["server"]
    users = bench_coalition["users"]
    # Plant 25 revocations for unrelated groups.
    for _ in range(25):
        cert = coalition.authority.issue_threshold_certificate(
            users, 2, f"Gload{next(_ids)}", 0, ValidityPeriod(0, 10**6)
        )
        revocation = coalition.authority.revoke_certificate(cert, now=1)
        server.protocol.apply_revocation(revocation, now=1)

    live_cert = bench_coalition["write_cert"]
    acl = server.object_acl("ObjectO")

    def setup():
        request = build_joint_request(
            users[0], [users[1]], "write", "ObjectO", live_cert,
            now=2, nonce=f"revload-{next(_ids)}",
        )
        return (request,), {}

    def authorize(request):
        decision = server.protocol.authorize(request, acl, now=3)
        assert decision.granted
        return decision

    benchmark.pedantic(authorize, setup=setup, rounds=10, iterations=1)
