"""Fault-injection sweep: flow completion under an adversarial network.

Companion to ``bench_netflow.py``: instead of the happy-path round
trip, this drives batches of joint access flows through seeded
drop/replay/delay regimes and measures (a) wall-clock cost of the
fault-tolerance machinery and (b) the outcome mix — how grant rates
degrade into degraded-grants, timeouts and abandonments as the
environment gets nastier.  The liveness contract (every flow terminal,
network drained) is asserted on every round.
"""

import itertools

import pytest

from repro.coalition.netflow import NetworkedAccessFlow
from repro.sim.clock import GlobalClock
from repro.sim.network import AdversaryPolicy, Network

FLOWS_PER_ROUND = 4
MAX_TICKS = 5_000

_round_counter = itertools.count()


def _run_sweep(server, users, cert, drop_rate, replay_rate, seed):
    network = Network(
        GlobalClock(),
        base_delay=1,
        adversary=AdversaryPolicy(
            drop_rate=drop_rate,
            replay_rate=replay_rate,
            max_extra_delay=2,
            seed=seed,
        ),
    )
    flow = NetworkedAccessFlow(network, server)
    batch = next(_round_counter)
    request_ids = [
        flow.start(
            users[i % 3], [users[(i + 1) % 3], users[(i + 2) % 3]],
            "write", "ObjectO", cert,
            write_content=b"fault sweep",
            tag=f"b{batch}-f{i}-s{seed}",
        )
        for i in range(FLOWS_PER_ROUND)
    ]
    ticks = flow.run(max_ticks=MAX_TICKS)
    assert ticks < MAX_TICKS, "network never quiesced"
    assert network.undelivered == 0
    outcomes = {"granted": 0, "denied": 0, "timed-out": 0, "abandoned": 0}
    for request_id in request_ids:
        result = flow.result_of(request_id)
        assert result is not None, "liveness violated: flow never terminated"
        outcomes[result.reason.split(":", 1)[0]] += 1
    return flow, outcomes


@pytest.mark.parametrize("drop_rate", [0.0, 0.3])
def test_flow_completion_under_drops(benchmark, bench_coalition, drop_rate):
    server = bench_coalition["server"]
    users = bench_coalition["users"]
    cert = bench_coalition["write_cert"]
    seeds = itertools.count(1)

    def sweep():
        flow, outcomes = _run_sweep(
            server, users, cert, drop_rate, 0.2, next(seeds)
        )
        return flow, outcomes

    flow, outcomes = benchmark(sweep)
    assert sum(outcomes.values()) == FLOWS_PER_ROUND
    if drop_rate == 0.0:
        assert outcomes["granted"] == FLOWS_PER_ROUND
        assert flow.stats()["retries"] == 0


def test_total_blackout_terminates(benchmark, bench_coalition):
    """Worst case: 100% drops.  Cost is the full retry/backoff ladder,
    and every flow must end timed-out — never stall."""
    server = bench_coalition["server"]
    users = bench_coalition["users"]
    cert = bench_coalition["write_cert"]
    seeds = itertools.count(1_000)

    def sweep():
        return _run_sweep(server, users, cert, 1.0, 0.0, next(seeds))

    flow, outcomes = benchmark(sweep)
    assert outcomes["timed-out"] == FLOWS_PER_ROUND
    assert flow.stats()["flows_timed_out"] == FLOWS_PER_ROUND
