"""E14 — sharded service throughput, latency tails, and load shedding.

Unlike the pytest-benchmark files, these runs are driven by the
open-loop loadgen (``repro.service.loadgen``), which measures its own
wall clock and latency percentiles; each run's report is recorded via
the ``service_report`` fixture and lands in ``BENCH_service.json`` at
session end (see ``conftest.pytest_sessionfinish``).

``SERVICE_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs; the
acceptance assertions (shard sweep coverage, typed ``Overloaded`` under
overdrive) hold in both sizes.
"""

import os
from dataclasses import replace

import pytest

from repro.service.loadgen import (
    LoadgenConfig,
    run_loadgen,
    sequential_baseline,
)

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
TOTAL_REQUESTS = 60 if SMOKE else 300
SHARD_SWEEP = [1, 2, 4]
# Process-parallel scaling can only manifest with real cores to run
# on: the strict shards-4 > shards-1 assertion is gated on the box,
# not assumed (a 1-core container serializes the workers again).
NPROC = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else 1

BASE_CONFIG = LoadgenConfig(
    total_requests=TOTAL_REQUESTS,
    queue_depth=1024,  # deep queues: the sweep measures evaluation, not shed
    read_fraction=0.5,
    revoke_every=TOTAL_REQUESTS // 6,
    num_objects=8,
    key_bits=256,
    mode="threaded",
    seed=17,
)


def test_sequential_baseline(service_report):
    report = sequential_baseline(replace(BASE_CONFIG, num_shards=1))
    service_report("sequential-baseline", report)
    assert report.granted > 0 and report.denied == 0


@pytest.mark.parametrize("num_shards", SHARD_SWEEP)
def test_throughput_by_shard_count(service_report, num_shards):
    report = run_loadgen(replace(BASE_CONFIG, num_shards=num_shards))
    service_report(f"shards-{num_shards}", report)
    assert report.evaluated == report.submitted  # nothing shed at depth 1024
    assert report.overloaded == 0
    assert report.granted > 0
    assert report.revocations_published > 0
    assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms


def test_scaling_efficiency_process_batched(service_report):
    """E17 — batched dispatch + process workers: sharding must *scale*.

    The shard sweep above shows threaded sharding under the GIL; this
    sweep runs the same workload with per-shard worker processes and a
    batched client, recording a ``scaling_efficiency`` series
    (rps(n) / (n * rps(1))) into ``BENCH_service.json``.  On a
    multi-core box the strict acceptance holds: 4 shards must beat 1.
    """
    reports = {}
    for num_shards in SHARD_SWEEP:
        report = run_loadgen(
            replace(
                BASE_CONFIG,
                num_shards=num_shards,
                mode="process",
                batch_size=16,
                revoke_every=0,
            )
        )
        reports[num_shards] = report
        base_rps = reports[1].throughput_rps
        efficiency = (
            report.throughput_rps / (num_shards * base_rps)
            if base_rps > 0
            else 0.0
        )
        service_report(
            f"scaling-process-shards-{num_shards}",
            report,
            scaling_efficiency=round(efficiency, 4),
            nproc=NPROC,
        )
        assert report.stranded == 0
        assert report.worker_crashes == 0
        assert report.evaluated == report.submitted
        assert report.granted > 0
    if NPROC >= 2 and not SMOKE:
        assert (
            reports[4].throughput_rps > reports[1].throughput_rps
        ), (
            f"process-parallel sharding failed to scale on {NPROC} cores: "
            f"shards-4 {reports[4].throughput_rps:.0f} rps vs "
            f"shards-1 {reports[1].throughput_rps:.0f} rps"
        )


def test_paced_queue_latency_p50(service_report):
    """E17 — paced arrivals collapse queue wait at shards-1.

    The open-loop max-pressure sweep front-loads the entire stream, so
    shards-1 p50 (~54ms in the seed) measures backlog depth, not the
    service.  A paced run at a sustainable rate holds the queue near
    empty: p50 must sit >=5x below that baseline (<10.8ms), and the
    absolute-deadline driver must actually keep its schedule.
    """
    rate = 400.0
    report = run_loadgen(
        replace(
            BASE_CONFIG,
            num_shards=1,
            arrival_rate=rate,
            revoke_every=0,
        )
    )
    service_report("paced-shards-1", report)
    assert report.stranded == 0
    assert report.evaluated == report.submitted
    assert report.target_rps == rate
    # Driver fidelity: submission must track the configured schedule
    # (a driver-bound run would make the latency numbers meaningless).
    assert report.achieved_rps >= 0.5 * rate
    if not SMOKE:
        assert report.p50_ms < 10.8, (
            f"paced p50 {report.p50_ms:.2f}ms did not drop >=5x below the "
            f"~54ms open-loop baseline"
        )


def test_overdriven_service_sheds_typed(service_report):
    """Open-loop max pressure into tiny queues: Overloaded, not silence."""
    report = run_loadgen(
        replace(BASE_CONFIG, num_shards=2, queue_depth=2, revoke_every=0)
    )
    service_report("overdrive-depth2", report)
    assert report.overloaded > 0, "overdrive must shed visibly"
    # Every arrival is accounted for: evaluated + shed == submitted.
    assert report.evaluated + report.overloaded == report.submitted
    assert report.granted > 0  # the service stays live under overload


def test_tracing_overhead_within_bound(service_report):
    """E15 — decision tracing costs < 10% on p95 decision latency.

    Inline mode isolates per-request evaluation cost (threaded mode's
    open-loop p95 measures queue depth, not span overhead).  Each
    config runs 5 interleaved repetitions with GC parked; comparing
    min-of-5 p95s filters the scheduler/GC spikes that otherwise swamp
    a sub-millisecond decision path, and one retry absorbs a wholly
    unlucky sample.  Measured span overhead is ~20us per request
    against a ~0.5ms p95 decision (~5%).
    """
    import gc

    config = replace(BASE_CONFIG, num_shards=4, mode="inline")

    def quiet_p95(cfg):
        gc.collect()
        gc.disable()
        try:
            return run_loadgen(cfg)
        finally:
            gc.enable()

    for attempt in (1, 2):
        bases, traceds = [], []
        for _ in range(5):
            bases.append(quiet_p95(config))
            traceds.append(quiet_p95(replace(config, tracing=True)))
        base = min(bases, key=lambda r: r.p95_ms)
        traced = min(traceds, key=lambda r: r.p95_ms)
        ratio = traced.p95_ms / base.p95_ms if base.p95_ms > 0 else 1.0
        if ratio <= 1.10 or attempt == 2:
            break
    service_report("tracing-off", base)
    service_report("tracing-on", traced, p95_overhead_ratio=round(ratio, 4))
    assert ratio <= 1.10, (
        f"tracing p95 overhead {ratio:.3f}x exceeds 1.10x bound "
        f"({traced.p95_ms:.3f}ms vs {base.p95_ms:.3f}ms)"
    )


def test_metrics_snapshot_matches_documented_schema(service_report):
    """The merged registry snapshot validates against repro.metrics/v1."""
    from repro.obs.metrics import SCHEMA, validate_snapshot
    from repro.service.loadgen import build_fixture

    # revoke_every=0: decisions against an older pinned epoch land in
    # that epoch's forked registry, which the current-epoch snapshot
    # deliberately omits — exact-count assertions need a fixed epoch.
    config = replace(BASE_CONFIG, num_shards=2, tracing=True, revoke_every=0)
    fixture = build_fixture(config)
    try:
        report = run_loadgen(config, fixture)
        snapshot = fixture.service.metrics_snapshot()
        validate_snapshot(snapshot)  # raises on any schema violation
        assert snapshot["schema"] == SCHEMA
        counters = snapshot["counters"]
        assert counters["service.submitted"] == report.submitted
        assert counters["service.evaluated"] == report.evaluated
        assert counters["protocol.decisions_made"] == report.evaluated
        hist = snapshot["histograms"]["service.request_latency_s"]
        assert hist["count"] == report.evaluated
        service_report("metrics-schema", report)
    finally:
        fixture.service.close()
