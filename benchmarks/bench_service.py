"""E14 — sharded service throughput, latency tails, and load shedding.

Unlike the pytest-benchmark files, these runs are driven by the
open-loop loadgen (``repro.service.loadgen``), which measures its own
wall clock and latency percentiles; each run's report is recorded via
the ``service_report`` fixture and lands in ``BENCH_service.json`` at
session end (see ``conftest.pytest_sessionfinish``).

``SERVICE_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs; the
acceptance assertions (shard sweep coverage, typed ``Overloaded`` under
overdrive) hold in both sizes.
"""

import os
from dataclasses import replace

import pytest

from repro.service.loadgen import (
    LoadgenConfig,
    run_loadgen,
    sequential_baseline,
)

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
TOTAL_REQUESTS = 60 if SMOKE else 300
SHARD_SWEEP = [1, 2, 4]

BASE_CONFIG = LoadgenConfig(
    total_requests=TOTAL_REQUESTS,
    queue_depth=1024,  # deep queues: the sweep measures evaluation, not shed
    read_fraction=0.5,
    revoke_every=TOTAL_REQUESTS // 6,
    num_objects=8,
    key_bits=256,
    mode="threaded",
    seed=17,
)


def test_sequential_baseline(service_report):
    report = sequential_baseline(replace(BASE_CONFIG, num_shards=1))
    service_report("sequential-baseline", report)
    assert report.granted > 0 and report.denied == 0


@pytest.mark.parametrize("num_shards", SHARD_SWEEP)
def test_throughput_by_shard_count(service_report, num_shards):
    report = run_loadgen(replace(BASE_CONFIG, num_shards=num_shards))
    service_report(f"shards-{num_shards}", report)
    assert report.evaluated == report.submitted  # nothing shed at depth 1024
    assert report.overloaded == 0
    assert report.granted > 0
    assert report.revocations_published > 0
    assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms


def test_overdriven_service_sheds_typed(service_report):
    """Open-loop max pressure into tiny queues: Overloaded, not silence."""
    report = run_loadgen(
        replace(BASE_CONFIG, num_shards=2, queue_depth=2, revoke_every=0)
    )
    service_report("overdrive-depth2", report)
    assert report.overloaded > 0, "overdrive must shed visibly"
    # Every arrival is accounted for: evaluated + shed == submitted.
    assert report.evaluated + report.overloaded == report.submitted
    assert report.granted > 0  # the service stays live under overload


def test_tracing_overhead_within_bound(service_report):
    """E15 — decision tracing costs < 10% on p95 decision latency.

    Inline mode isolates per-request evaluation cost (threaded mode's
    open-loop p95 measures queue depth, not span overhead).  Each
    config runs 5 interleaved repetitions with GC parked; comparing
    min-of-5 p95s filters the scheduler/GC spikes that otherwise swamp
    a sub-millisecond decision path, and one retry absorbs a wholly
    unlucky sample.  Measured span overhead is ~20us per request
    against a ~0.5ms p95 decision (~5%).
    """
    import gc

    config = replace(BASE_CONFIG, num_shards=4, mode="inline")

    def quiet_p95(cfg):
        gc.collect()
        gc.disable()
        try:
            return run_loadgen(cfg)
        finally:
            gc.enable()

    for attempt in (1, 2):
        bases, traceds = [], []
        for _ in range(5):
            bases.append(quiet_p95(config))
            traceds.append(quiet_p95(replace(config, tracing=True)))
        base = min(bases, key=lambda r: r.p95_ms)
        traced = min(traceds, key=lambda r: r.p95_ms)
        ratio = traced.p95_ms / base.p95_ms if base.p95_ms > 0 else 1.0
        if ratio <= 1.10 or attempt == 2:
            break
    service_report("tracing-off", base)
    service_report("tracing-on", traced, p95_overhead_ratio=round(ratio, 4))
    assert ratio <= 1.10, (
        f"tracing p95 overhead {ratio:.3f}x exceeds 1.10x bound "
        f"({traced.p95_ms:.3f}ms vs {base.p95_ms:.3f}ms)"
    )


def test_metrics_snapshot_matches_documented_schema(service_report):
    """The merged registry snapshot validates against repro.metrics/v1."""
    from repro.obs.metrics import SCHEMA, validate_snapshot
    from repro.service.loadgen import build_fixture

    # revoke_every=0: decisions against an older pinned epoch land in
    # that epoch's forked registry, which the current-epoch snapshot
    # deliberately omits — exact-count assertions need a fixed epoch.
    config = replace(BASE_CONFIG, num_shards=2, tracing=True, revoke_every=0)
    fixture = build_fixture(config)
    try:
        report = run_loadgen(config, fixture)
        snapshot = fixture.service.metrics_snapshot()
        validate_snapshot(snapshot)  # raises on any schema violation
        assert snapshot["schema"] == SCHEMA
        counters = snapshot["counters"]
        assert counters["service.submitted"] == report.submitted
        assert counters["service.evaluated"] == report.evaluated
        assert counters["protocol.decisions_made"] == report.evaluated
        hist = snapshot["histograms"]["service.request_latency_s"]
        assert hist["count"] == report.evaluated
        service_report("metrics-schema", report)
    finally:
        fixture.service.close()
