"""E14 — sharded service throughput, latency tails, and load shedding.

Unlike the pytest-benchmark files, these runs are driven by the
open-loop loadgen (``repro.service.loadgen``), which measures its own
wall clock and latency percentiles; each run's report is recorded via
the ``service_report`` fixture and lands in ``BENCH_service.json`` at
session end (see ``conftest.pytest_sessionfinish``).

``SERVICE_BENCH_SMOKE=1`` shrinks the workload for CI smoke runs; the
acceptance assertions (shard sweep coverage, typed ``Overloaded`` under
overdrive) hold in both sizes.
"""

import os
from dataclasses import replace

import pytest

from repro.service.loadgen import (
    LoadgenConfig,
    run_loadgen,
    sequential_baseline,
)

SMOKE = os.environ.get("SERVICE_BENCH_SMOKE") == "1"
TOTAL_REQUESTS = 60 if SMOKE else 300
SHARD_SWEEP = [1, 2, 4]

BASE_CONFIG = LoadgenConfig(
    total_requests=TOTAL_REQUESTS,
    queue_depth=1024,  # deep queues: the sweep measures evaluation, not shed
    read_fraction=0.5,
    revoke_every=TOTAL_REQUESTS // 6,
    num_objects=8,
    key_bits=256,
    mode="threaded",
    seed=17,
)


def test_sequential_baseline(service_report):
    report = sequential_baseline(replace(BASE_CONFIG, num_shards=1))
    service_report("sequential-baseline", report)
    assert report.granted > 0 and report.denied == 0


@pytest.mark.parametrize("num_shards", SHARD_SWEEP)
def test_throughput_by_shard_count(service_report, num_shards):
    report = run_loadgen(replace(BASE_CONFIG, num_shards=num_shards))
    service_report(f"shards-{num_shards}", report)
    assert report.evaluated == report.submitted  # nothing shed at depth 1024
    assert report.overloaded == 0
    assert report.granted > 0
    assert report.revocations_published > 0
    assert report.p50_ms <= report.p95_ms <= report.p99_ms <= report.max_ms


def test_overdriven_service_sheds_typed(service_report):
    """Open-loop max pressure into tiny queues: Overloaded, not silence."""
    report = run_loadgen(
        replace(BASE_CONFIG, num_shards=2, queue_depth=2, revoke_every=0)
    )
    service_report("overdrive-depth2", report)
    assert report.overloaded > 0, "overdrive must shed visibly"
    # Every arrival is accounted for: evaluated + shed == submitted.
    assert report.evaluated + report.overloaded == report.submitted
    assert report.granted > 0  # the service stays live under overload
