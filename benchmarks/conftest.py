"""Shared benchmark fixtures: coalition setups built once per session."""

import pytest

from repro.coalition import ACLEntry, Coalition, CoalitionServer, Domain
from repro.crypto.boneh_franklin import dealer_shared_rsa
from repro.pki import ValidityPeriod

BENCH_KEY_BITS = 256


@pytest.fixture(scope="session")
def bench_coalition():
    """A formed 3-domain coalition with server, object and certificates."""
    domains = [Domain(f"D{i}", key_bits=BENCH_KEY_BITS) for i in (1, 2, 3)]
    users = [
        d.register_user(f"User_D{i}", now=0)
        for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition("bench", key_bits=BENCH_KEY_BITS)
    coalition.form(domains)
    server = CoalitionServer("ServerP", freshness_window=10**9)
    coalition.attach_server(server)
    server.create_object(
        "ObjectO",
        b"benchmark object",
        [ACLEntry.of("G_write", ["write"]), ACLEntry.of("G_read", ["read"])],
        admin_group="G_admin",
    )
    write_cert = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", 0, ValidityPeriod(0, 10**9)
    )
    read_cert = coalition.authority.issue_threshold_certificate(
        users, 1, "G_read", 0, ValidityPeriod(0, 10**9)
    )
    return {
        "coalition": coalition,
        "server": server,
        "domains": domains,
        "users": users,
        "write_cert": write_cert,
        "read_cert": read_cert,
    }


@pytest.fixture(scope="session")
def bench_shared_key():
    return dealer_shared_rsa(3, bits=BENCH_KEY_BITS)
