"""Shared benchmark fixtures: coalition setups built once per session.

Also emits ``BENCH_derivation.json`` next to the repo root after every
benchmarked run, so successive PRs have a perf trajectory to compare
against (mean/stddev/rounds per benchmark, grouped by file).
"""

import json
import pathlib

import pytest

from repro.coalition import ACLEntry, Coalition, CoalitionServer, Domain
from repro.crypto.boneh_franklin import dealer_shared_rsa
from repro.pki import ValidityPeriod

BENCH_KEY_BITS = 256

_SUMMARY_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_derivation.json"
)
_SERVICE_SUMMARY_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_service.json"
)


@pytest.fixture(scope="session")
def service_report(request):
    """Recorder for loadgen reports (``bench_service.py``).

    Reports accumulate on the session config and are written to
    ``BENCH_service.json`` at session end — independent of the
    pytest-benchmark plugin, so they survive ``--benchmark-disable``
    smoke runs too.
    """
    reports = request.config.__dict__.setdefault(
        "_service_bench_reports", {}
    )

    def record(name, report, **extra):
        reports[name] = {"name": name, **report.as_dict(), **extra}

    return record


def _write_service_summary(config):
    reports = getattr(config, "_service_bench_reports", {})
    if not reports:
        return
    runs = [reports[name] for name in sorted(reports)]
    _SERVICE_SUMMARY_PATH.write_text(
        json.dumps({"service_runs": runs}, indent=2) + "\n"
    )


def pytest_sessionfinish(session, exitstatus):
    """Write a machine-readable summary of any collected benchmark stats.

    Skipped entirely when the benchmark plugin is absent or disabled
    (``--benchmark-disable`` smoke runs collect no stats).
    """
    _write_service_summary(session.config)
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    rows = []
    for bench in getattr(bench_session, "benchmarks", []):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        rows.append(
            {
                "name": bench.fullname,
                "group": bench.group,
                "mean_s": stats.mean,
                "stddev_s": stats.stddev,
                "min_s": stats.min,
                "max_s": stats.max,
                "rounds": stats.rounds,
            }
        )
    if not rows:
        return
    rows.sort(key=lambda row: row["name"])
    _SUMMARY_PATH.write_text(json.dumps({"benchmarks": rows}, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_coalition():
    """A formed 3-domain coalition with server, object and certificates."""
    domains = [Domain(f"D{i}", key_bits=BENCH_KEY_BITS) for i in (1, 2, 3)]
    users = [
        d.register_user(f"User_D{i}", now=0)
        for i, d in enumerate(domains, start=1)
    ]
    coalition = Coalition("bench", key_bits=BENCH_KEY_BITS)
    coalition.form(domains)
    server = CoalitionServer("ServerP", freshness_window=10**9)
    coalition.attach_server(server)
    server.create_object(
        "ObjectO",
        b"benchmark object",
        [ACLEntry.of("G_write", ["write"]), ACLEntry.of("G_read", ["read"])],
        admin_group="G_admin",
    )
    write_cert = coalition.authority.issue_threshold_certificate(
        users, 2, "G_write", 0, ValidityPeriod(0, 10**9)
    )
    read_cert = coalition.authority.issue_threshold_certificate(
        users, 1, "G_read", 0, ValidityPeriod(0, 10**9)
    )
    return {
        "coalition": coalition,
        "server": server,
        "domains": domains,
        "users": users,
        "write_cert": write_cert,
        "read_cert": read_cert,
    }


@pytest.fixture(scope="session")
def bench_shared_key():
    return dealer_shared_rsa(3, bits=BENCH_KEY_BITS)
