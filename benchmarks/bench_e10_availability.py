"""E10 — m-of-n availability for joint signing (Section 3.3).

Threshold sharing keeps signing available while up to n-m domains are
down; n-of-n sharing pays full consensus with availability q^n.  The
bench runs real Shoup threshold signatures under random domain outages
and prints the availability series.
"""

from repro.analysis.availability import (
    n_of_n_availability,
    simulate_signing_availability,
)
from repro.crypto.threshold import generate_threshold_key


def test_e10_threshold_signing_latency(benchmark):
    """Cost of one 3-of-5 Shoup threshold signature."""
    from repro.crypto.threshold import (
        combine_threshold_shares,
        threshold_sign_share,
    )

    key = generate_threshold_key(5, 3, bits=96)

    def sign():
        shares = [
            threshold_sign_share(b"bench", s, key.public)
            for s in key.shares[:3]
        ]
        return combine_threshold_shares(b"bench", shares, key.public)

    signature = benchmark(sign)
    assert key.public.verify(b"bench", signature)


def test_e10_availability_series(benchmark):
    """The availability table: 5-of-5 vs 3-of-5 vs 1-of-5, analytic + MC."""
    key = generate_threshold_key(5, 3, bits=96)

    def series():
        return [
            simulate_signing_availability(5, 3, q, trials=60, key=key, seed=int(q * 100))
            for q in (0.99, 0.95, 0.9, 0.8, 0.6)
        ]

    points = benchmark.pedantic(series, rounds=1, iterations=1)
    print("\nE10: joint-signing availability (n=5)")
    print(f"{'q':>6} {'5-of-5':>9} {'3-of-5 analytic':>16} {'3-of-5 MC':>10}")
    for point in points:
        print(
            f"{point.q:>6} {n_of_n_availability(5, point.q):>9.4f} "
            f"{point.analytic:>16.4f} {point.simulated:>10.4f}"
        )
    # Shape: m-of-n strictly dominates n-of-n below q=1.
    for point in points:
        assert point.analytic >= n_of_n_availability(5, point.q)


def test_e10_robust_combine_with_byzantine_share(benchmark):
    """Intrusion-tolerant combination: one garbled share among five."""
    from repro.crypto.threshold import (
        ThresholdSignatureShare,
        robust_combine,
        threshold_sign_share,
    )

    key = generate_threshold_key(5, 3, bits=96)
    shares = [
        threshold_sign_share(b"robust", s, key.public) for s in key.shares
    ]
    shares[2] = ThresholdSignatureShare(
        index=shares[2].index,
        value=(shares[2].value * 13) % key.public.modulus,
    )

    def combine():
        signature, bad = robust_combine(b"robust", shares, key.public)
        assert bad == [shares[2].index]
        return signature

    signature = benchmark(combine)
    assert key.public.verify(b"robust", signature)
